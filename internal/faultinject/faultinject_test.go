package faultinject

import (
	"errors"
	"testing"
	"time"
)

// TestNilInjectorIsInert pins the production-path contract: a nil
// injector never fails anything.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.At(PointJournalAppend); err != nil {
		t.Fatalf("nil At = %v", err)
	}
	if err := in.ShardAttempt(3, 0); err != nil {
		t.Fatalf("nil ShardAttempt = %v", err)
	}
	if in.Hits(PointJournalAppend) != 0 {
		t.Fatal("nil Hits != 0")
	}
}

func TestCrashFiresOnArmedHit(t *testing.T) {
	in, err := New(Config{Crash: map[Point]int{PointSnapshotWrite: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		err := in.At(PointSnapshotWrite)
		if (i == 3) != errors.Is(err, ErrCrash) {
			t.Fatalf("hit %d: err = %v", i, err)
		}
		// Unarmed points never fire.
		if err := in.At(PointJournalAppend); err != nil {
			t.Fatalf("unarmed point fired: %v", err)
		}
	}
	if in.Hits(PointSnapshotWrite) != 5 {
		t.Fatalf("Hits = %d", in.Hits(PointSnapshotWrite))
	}
}

// TestTransientFailuresAreLeadingAndDeterministic pins the retry
// contract: shard attempt a fails iff a < k(shard), so bounded retry
// that outlasts k deterministically succeeds, and the schedule
// replays exactly for a fixed seed.
func TestTransientFailuresAreLeadingAndDeterministic(t *testing.T) {
	mk := func() *Injector {
		in, err := New(Config{Seed: 11, TransientRate: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(), mk()
	sawFailure := false
	for shard := 0; shard < 64; shard++ {
		failed := 0
		for attempt := 0; attempt < 40; attempt++ {
			ea, eb := a.ShardAttempt(shard, attempt), b.ShardAttempt(shard, attempt)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("shard %d attempt %d: schedules diverge", shard, attempt)
			}
			if ea == nil {
				// Once an attempt succeeds, every later one must too.
				for a2 := attempt; a2 < attempt+4; a2++ {
					if err := a.ShardAttempt(shard, a2); err != nil {
						t.Fatalf("shard %d: failure after success at attempt %d", shard, a2)
					}
				}
				break
			}
			if !IsTransient(ea) {
				t.Fatalf("shard %d: %v not transient", shard, ea)
			}
			failed++
		}
		if failed > 0 {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Fatal("rate 0.5 injected no failures across 64 shards")
	}
}

func TestPoisonedShardNeverClears(t *testing.T) {
	in, err := New(Config{Poisoned: []int{5}})
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 10; attempt++ {
		err := in.ShardAttempt(5, attempt)
		if !errors.Is(err, ErrPoisoned) {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if IsTransient(err) {
			t.Fatal("poisoned error must not read as transient")
		}
	}
	if err := in.ShardAttempt(4, 0); err != nil {
		t.Fatalf("unpoisoned shard failed: %v", err)
	}
}

func TestBackoffBoundedExponential(t *testing.T) {
	base, max := 2*time.Millisecond, 20*time.Millisecond
	want := []time.Duration{2, 4, 8, 16, 20, 20}
	for attempt, w := range want {
		if got := Backoff(base, attempt, max); got != w*time.Millisecond {
			t.Errorf("attempt %d: %v want %v", attempt, got, w*time.Millisecond)
		}
	}
	if Backoff(0, 3, max) != 0 {
		t.Error("zero base must disable backoff")
	}
}

func TestParseCrash(t *testing.T) {
	got, err := ParseCrash("journal.append:3, snapshot.rename:1")
	if err != nil {
		t.Fatal(err)
	}
	if got[PointJournalAppend] != 3 || got[PointSnapshotRename] != 1 || len(got) != 2 {
		t.Fatalf("ParseCrash = %v", got)
	}
	if m, err := ParseCrash(""); err != nil || m != nil {
		t.Fatalf("empty spec = %v, %v", m, err)
	}
	for _, bad := range []string{"journal.append", "nope:1", "journal.append:0", "journal.append:x"} {
		if _, err := ParseCrash(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestParseShardList(t *testing.T) {
	got, err := ParseShardList("3, 17,0")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 3 || got[1] != 17 || got[2] != 0 {
		t.Fatalf("ParseShardList = %v", got)
	}
	if _, err := ParseShardList("-1"); err == nil {
		t.Error("negative shard accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{TransientRate: 1.5}); err == nil {
		t.Error("rate 1.5 accepted")
	}
	if _, err := New(Config{Crash: map[Point]int{PointJournalAppend: 0}}); err == nil {
		t.Error("hit count 0 accepted")
	}
}
