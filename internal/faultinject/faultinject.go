// Package faultinject is the deterministic fault-injection harness the
// campaign's recovery paths are tested with. Durability code that is
// only ever exercised by real crashes is durability code that has never
// been exercised at all, so every failure mode the checkpoint layer
// claims to survive — a process dying mid-journal-append, a snapshot
// torn between temp write and rename, a shard attempt failing
// transiently, a shard failing every attempt — can be injected here,
// keyed by a seed so a failing run is replayable bit for bit.
//
// Three fault families:
//
//   - Crash points: named sites inside recovery-critical write paths
//     (journal append, snapshot write/rename, journal truncate). A
//     crash is armed for the Nth hit of a point; when it fires, the
//     instrumented site deliberately leaves the same on-disk state a
//     kill -9 at that instant would (a torn frame, an orphaned temp
//     file) and returns ErrCrash, which callers treat as process
//     death: abort immediately, write nothing more.
//   - Transient shard errors: shard attempt a fails while a < k, where
//     k is drawn per shard from the seed — so bounded retry with
//     backoff deterministically succeeds once it outlasts k.
//   - Poisoned shards: listed shards fail every attempt, forcing the
//     quarantine path (the run degrades to a partial report with an
//     explicit coverage fraction instead of aborting).
//
// A nil *Injector is inert: every method is nil-receiver-safe and
// reports no faults, so production paths carry no conditionals.
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point names one instrumented site in a recovery-critical path.
type Point string

// The instrumented sites of the checkpoint write path.
const (
	// PointJournalAppend fires inside Journal.Append: the frame is
	// half-written (torn) when the crash triggers, exactly what a kill
	// -9 mid-write leaves behind.
	PointJournalAppend Point = "journal.append"
	// PointSnapshotWrite fires while the snapshot temp file is being
	// written: the temp is left torn and never renamed, so resume must
	// ignore it.
	PointSnapshotWrite Point = "snapshot.write"
	// PointSnapshotRename fires after the snapshot rename commits but
	// before the now-redundant journal is truncated, so resume sees
	// journal records already covered by the snapshot bitmap.
	PointSnapshotRename Point = "snapshot.rename"
	// PointJournalTruncate fires after the post-snapshot journal
	// truncate, before any later append.
	PointJournalTruncate Point = "journal.truncate"
)

// Points lists every instrumented site, in write-path order — the
// iteration set for interrupted-at-every-crash-point test matrices.
func Points() []Point {
	return []Point{PointJournalAppend, PointSnapshotWrite, PointSnapshotRename, PointJournalTruncate}
}

// ErrCrash is the injected process death. Callers must treat it the
// way a kill -9 treats them: stop immediately and write nothing more.
var ErrCrash = errors.New("faultinject: injected crash")

// ErrTransient is an injected shard failure that clears after retries.
var ErrTransient = errors.New("faultinject: injected transient shard failure")

// ErrPoisoned is an injected shard failure that never clears; the
// engine quarantines the shard after exhausting its attempts.
var ErrPoisoned = errors.New("faultinject: poisoned shard")

// IsTransient reports whether a shard error is worth retrying.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// Config parameterizes an Injector.
type Config struct {
	// Seed keys the transient-failure draws; a fixed seed replays the
	// identical fault schedule.
	Seed uint64
	// Crash maps a point to the 1-based hit count that kills the
	// process: {PointJournalAppend: 3} crashes on the third append.
	Crash map[Point]int
	// TransientRate is the per-draw probability that a shard's leading
	// attempt fails transiently; the per-shard consecutive-failure
	// count is geometric in it (0 = no transient faults).
	TransientRate float64
	// Poisoned lists shard indices that fail every attempt.
	Poisoned []int
}

// Injector decides, deterministically, which operations fail. Safe
// for concurrent use; the zero of *Injector (nil) injects nothing.
type Injector struct {
	cfg      Config
	poisoned map[int]bool

	mu   sync.Mutex
	hits map[Point]int
}

// New builds an Injector from cfg. A nil return for an all-zero config
// would save nothing, so New always returns a live injector; pass a
// nil *Injector where no faults are wanted.
func New(cfg Config) (*Injector, error) {
	if cfg.TransientRate < 0 || cfg.TransientRate >= 1 {
		if cfg.TransientRate != 0 {
			return nil, fmt.Errorf("faultinject: transient rate %g out of [0, 1)", cfg.TransientRate)
		}
	}
	for p, n := range cfg.Crash {
		if n <= 0 {
			return nil, fmt.Errorf("faultinject: crash point %s armed for hit %d (want >= 1)", p, n)
		}
	}
	in := &Injector{
		cfg:      cfg,
		poisoned: make(map[int]bool, len(cfg.Poisoned)),
		hits:     make(map[Point]int),
	}
	for _, s := range cfg.Poisoned {
		in.poisoned[s] = true
	}
	return in, nil
}

// At records one hit of point p and returns ErrCrash when the armed
// count is reached. The instrumented site is responsible for leaving
// kill-9-equivalent on-disk state before propagating the error.
func (in *Injector) At(p Point) error {
	if in == nil || len(in.cfg.Crash) == 0 {
		return nil
	}
	armed, ok := in.cfg.Crash[p]
	if !ok {
		return nil
	}
	in.mu.Lock()
	in.hits[p]++
	fire := in.hits[p] == armed
	in.mu.Unlock()
	if fire {
		return fmt.Errorf("%w at %s (hit %d)", ErrCrash, p, armed)
	}
	return nil
}

// Hits reports how many times point p has been reached.
func (in *Injector) Hits(p Point) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[p]
}

// ShardAttempt reports the injected outcome of attempt (0-based) on a
// shard: nil to proceed, ErrPoisoned for quarantined-forever shards,
// ErrTransient while the shard's seeded leading-failure count has not
// been outlasted.
func (in *Injector) ShardAttempt(shard, attempt int) error {
	if in == nil {
		return nil
	}
	if in.poisoned[shard] {
		return fmt.Errorf("%w: shard %d attempt %d", ErrPoisoned, shard, attempt)
	}
	if in.cfg.TransientRate <= 0 {
		return nil
	}
	if attempt < in.transientFailures(shard) {
		return fmt.Errorf("%w: shard %d attempt %d", ErrTransient, shard, attempt)
	}
	return nil
}

// transientFailures draws the number of consecutive leading failures
// for one shard: geometric in TransientRate, deterministic in
// (Seed, shard).
func (in *Injector) transientFailures(shard int) int {
	k := 0
	for k < 32 && unit(mix(in.cfg.Seed, 0x7472616E7369, uint64(shard), uint64(k))) < in.cfg.TransientRate {
		k++
	}
	return k
}

// Backoff returns the bounded exponential delay before retry attempt
// (0-based: the delay after the first failure is base): base<<attempt,
// capped at max. Non-positive base or max disables the delay.
func Backoff(base time.Duration, attempt int, max time.Duration) time.Duration {
	if base <= 0 || max <= 0 {
		return 0
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d <<= 1
	}
	if d > max {
		d = max
	}
	return d
}

// ParseCrash parses a CLI crash spec: comma-separated "point:hit"
// pairs, e.g. "journal.append:3,snapshot.rename:1".
func ParseCrash(spec string) (map[Point]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	known := make(map[Point]bool)
	names := make([]string, 0, 4)
	for _, p := range Points() {
		known[p] = true
		names = append(names, string(p))
	}
	sort.Strings(names)
	out := make(map[Point]int)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		point, hitStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("faultinject: crash spec %q: want point:hit", part)
		}
		p := Point(point)
		if !known[p] {
			return nil, fmt.Errorf("faultinject: unknown crash point %q (known: %s)", point, strings.Join(names, ", "))
		}
		hit, err := strconv.Atoi(hitStr)
		if err != nil || hit <= 0 {
			return nil, fmt.Errorf("faultinject: crash spec %q: hit count must be a positive integer", part)
		}
		out[p] = hit
	}
	return out, nil
}

// ParseShardList parses a comma-separated shard index list ("3,17").
func ParseShardList(spec string) ([]int, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("faultinject: shard list entry %q: want a non-negative integer", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// mix is splitmix64 over the folded arguments — the same style of
// seeded draw the population generator uses, so fault schedules are
// reproducible across runs and machines.
func mix(vs ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range vs {
		h ^= v + 0x9E3779B97F4A7C15 + h<<6 + h>>2
		z := h
		z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
		z = (z ^ z>>27) * 0x94D049BB133111EB
		h = z ^ z>>31
	}
	return h
}

// unit maps a draw to [0, 1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}
