// Package identity generates deterministic synthetic personas for the
// Online Account Ecosystem simulation.
//
// The paper's measurement and attack studies operate on real users'
// personal information (names, citizen IDs, cellphone numbers, bankcard
// numbers, addresses, acquaintances). This package substitutes a
// seeded generator that produces structurally valid equivalents:
// citizen IDs carry a real ISO 7064 MOD 11-2 check digit (the GB 11643
// scheme used by Chinese 18-digit IDs the paper's case studies rely
// on), bankcard numbers are Luhn-valid, and phone numbers follow the
// +86 mobile numbering plan. Every persona is a pure function of
// (seed, index), so experiments are reproducible bit for bit.
//
// Two access models share one draw stream:
//
//   - Persona(i) materializes the complete persona — every field as a
//     heap string — for code that needs the whole record;
//   - Ref(i) is the lazy handle: a (stream-origin, index) pair whose
//     accessors derive single attributes on demand, byte-identical to
//     the materialized fields, without generating the rest. Fixed-
//     position attributes skip straight to their draw (SplitMix64
//     state k steps ahead is one multiply away), names resolve through
//     the interned fullNames table, and Append* variants write into
//     caller-owned buffers so population-scale consumers touch the
//     allocator only for blocks, never per subscriber.
package identity

import (
	"strconv"
	"strings"
)

// Persona is one synthetic user: the complete set of personal
// information fields the paper's Table I tracks, plus the historical
// record artifacts (photos, orders) exploited in the cloud-storage
// attack step.
type Persona struct {
	Index      int
	RealName   string
	CitizenID  string // 18 digits, valid MOD 11-2 check digit
	Phone      string // +86 mobile number, unique per persona
	Email      string
	Address    string
	Bankcard   string // Luhn-valid 16-digit PAN
	UserID     string
	StudentID  string
	DeviceType string
	// Acquaintances holds real names of related personas (the social
	// relationship category of personal information).
	Acquaintances []string
	// Photos models cloud-stored historical records; the paper notes
	// that cloud backups often contain citizen-ID photos.
	Photos []string
}

// Generator produces personas deterministically from a seed.
// The zero value is not usable; construct with NewGenerator.
type Generator struct {
	seed int64
}

// NewGenerator returns a Generator whose output is a pure function of
// seed: Persona(i) is stable across runs and machines.
func NewGenerator(seed int64) *Generator {
	return &Generator{seed: seed}
}

// The draw stream is SplitMix64: from a per-persona origin z0, draw k
// is finalize(z0 + (k+1)·γ). Because the state advance is a plain
// addition, any draw is O(1) reachable without computing the ones
// before it — the property the lazy Ref accessors rest on. It replaced
// the earlier per-persona math/rand.Rand — seeding a rand.Source
// initializes a 607-word lagged-Fibonacci table per subscriber, which
// profiled at ~14% of campaign CPU at population scale. The draw
// sequence differs from the math/rand-backed generation, so
// persona-derived digests (population.Fingerprint) carry a version
// bump (population.FingerprintVersion = 2).
const splitmixGamma = 0x9e3779b97f4a7c15

// finalize is the SplitMix64 output scramble.
func finalize(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// originOf derives the independent stream origin for persona i so that
// personas can be generated in any order (or in parallel) without
// coordination; the scramble keeps streams decorrelated even for
// adjacent indexes.
func originOf(seed int64, i int) uint64 {
	return finalize(uint64(seed) + uint64(i)*splitmixGamma)
}

// drawAt returns the k-th draw (0-based) of the stream rooted at z0.
func drawAt(z0 uint64, k int) uint64 {
	return finalize(z0 + uint64(k+1)*splitmixGamma)
}

// The fixed draw positions of a persona's stream. Every attribute owns
// a stable slot, shared by the eager Persona builder and the lazy Ref
// accessors, so the two derivations are position-identical by
// construction. Acquaintances and photos follow at drawAcq0 with
// variable length. Inserting a slot is a compatibility break for
// recorded fixtures (population.FingerprintVersion pins it).
const (
	drawSurname = iota
	drawGiven
	drawRegion
	drawYear
	drawMonth
	drawDay
	drawSeq
	drawAddrNum
	drawStreet
	drawDistrict
	drawCity
	drawBankcard
	drawDevice
	drawNAcq
	drawAcq0
)

// Ref is the lazy persona handle: 16 bytes standing in for the whole
// materialized record. Accessors derive attributes on demand from the
// draw stream, byte-identical to the corresponding Persona fields.
// The zero value is persona 0 of seed 0; Refs are comparable and safe
// to copy.
type Ref struct {
	z0  uint64
	idx int
}

// Ref returns the lazy handle for persona i. Negative indexes are
// invalid and panic, matching Persona.
func (g *Generator) Ref(i int) Ref {
	if i < 0 {
		panic("identity: negative persona index")
	}
	return Ref{z0: originOf(g.seed, i), idx: i}
}

// Index returns the persona index the handle refers to.
func (r Ref) Index() int { return r.idx }

// draw is the k-th draw of this persona's stream.
func (r Ref) draw(k int) uint64 { return drawAt(r.z0, k) }

// intn maps draw k uniformly onto [0, n). The modulo bias is below
// 2^-40 for every n this package uses — irrelevant for synthetic
// personas, where only determinism matters.
func (r Ref) intn(k, n int) int { return int(r.draw(k) % uint64(n)) }

// RealName returns the persona's full name, resolved through the
// process-wide interned fullNames table: every persona sharing a
// (surname, given) combination shares one canonical string.
func (r Ref) RealName() string {
	return fullNames[r.intn(drawSurname, len(surnames))][r.intn(drawGiven, len(givenNames))]
}

// DeviceType returns the persona's device model (vocabulary string,
// already canonical).
func (r Ref) DeviceType() string { return deviceTypes[r.intn(drawDevice, len(deviceTypes))] }

// AppendPhone appends the persona's +86 mobile number: prefix 13x-19x
// plus an 8-digit subscriber part derived from the index.
func (r Ref) AppendPhone(b []byte) []byte {
	b = append(b, "+86"...)
	b = append(b, phonePrefixes[r.idx%len(phonePrefixes)]...)
	return appendPadInt(b, int64(r.idx), 8)
}

// Phone returns the persona's phone number as a fresh string.
func (r Ref) Phone() string { return string(r.AppendPhone(make([]byte, 0, 14))) }

// AppendCitizenID appends the 18-character ID: 6-digit region, 8-digit
// birth date, 3-digit sequence, and the MOD 11-2 check character.
func (r Ref) AppendCitizenID(b []byte) []byte {
	start := len(b)
	b = append(b, regionCodes[r.intn(drawRegion, len(regionCodes))]...)
	b = appendPadInt(b, int64(1955+r.intn(drawYear, 50)), 4)
	b = appendPadInt(b, int64(1+r.intn(drawMonth, 12)), 2)
	b = appendPadInt(b, int64(1+r.intn(drawDay, 28)), 2)
	b = appendPadInt(b, int64(r.intn(drawSeq, 1000)), 3)
	return append(b, citizenCheckChar(b[start:]))
}

// CitizenID returns the citizen ID as a fresh string.
func (r Ref) CitizenID() string { return string(r.AppendCitizenID(make([]byte, 0, 18))) }

// AppendAddress appends the street address ("N Street, District
// District, City").
func (r Ref) AppendAddress(b []byte) []byte {
	b = strconv.AppendInt(b, int64(1+r.intn(drawAddrNum, 999)), 10)
	b = append(b, ' ')
	b = append(b, streets[r.intn(drawStreet, len(streets))]...)
	b = append(b, ", "...)
	b = append(b, districts[r.intn(drawDistrict, len(districts))]...)
	b = append(b, " District, "...)
	b = append(b, cities[r.intn(drawCity, len(cities))]...)
	return b
}

// Address returns the address as a fresh string.
func (r Ref) Address() string { return string(r.AppendAddress(make([]byte, 0, 48))) }

// AppendBankcard appends the Luhn-valid 16-digit PAN with a
// recognizable synthetic IIN so test data cannot be mistaken for a
// real card.
func (r Ref) AppendBankcard(b []byte) []byte {
	start := len(b)
	b = append(b, "62"...)
	b = appendPadInt(b, int64(r.draw(drawBankcard)%uint64(1e13)), 13)
	return append(b, luhnCheckDigit(b[start:]))
}

// Bankcard returns the PAN as a fresh string.
func (r Ref) Bankcard() string { return string(r.AppendBankcard(make([]byte, 0, 16))) }

// AppendEmail appends the persona's email address, derived from the
// lowercase name tables and the index.
func (r Ref) AppendEmail(b []byte) []byte {
	b = append(b, surnamesLower[r.intn(drawSurname, len(surnames))]...)
	b = append(b, '.')
	b = append(b, givenNamesLower[r.intn(drawGiven, len(givenNames))]...)
	b = strconv.AppendInt(b, int64(r.idx), 10)
	return append(b, "@mail.example"...)
}

// Email returns the email address as a fresh string.
func (r Ref) Email() string { return string(r.AppendEmail(make([]byte, 0, 32))) }

// AppendUserID appends the service-facing user ID ("u%07d").
func (r Ref) AppendUserID(b []byte) []byte {
	b = append(b, 'u')
	return appendPadInt(b, int64(r.idx), 7)
}

// UserID returns the user ID as a fresh string.
func (r Ref) UserID() string { return string(r.AppendUserID(make([]byte, 0, 8))) }

// AppendStudentID appends the student ID ("S%08d" of 20100000+index).
func (r Ref) AppendStudentID(b []byte) []byte {
	b = append(b, 'S')
	return appendPadInt(b, int64(20100000+r.idx), 8)
}

// StudentID returns the student ID as a fresh string.
func (r Ref) StudentID() string { return string(r.AppendStudentID(make([]byte, 0, 9))) }

// Persona materializes the complete record the handle refers to —
// the eager twin, byte-identical field by field.
func (r Ref) Persona() Persona {
	p := Persona{
		Index:      r.idx,
		RealName:   r.RealName(),
		CitizenID:  r.CitizenID(),
		Phone:      r.Phone(),
		Email:      r.Email(),
		Address:    r.Address(),
		Bankcard:   r.Bankcard(),
		UserID:     r.UserID(),
		StudentID:  r.StudentID(),
		DeviceType: r.DeviceType(),
	}
	nAcq := 2 + r.intn(drawNAcq, 4)
	p.Acquaintances = make([]string, 0, nAcq)
	for k := 0; k < nAcq; k++ {
		s := r.intn(drawAcq0+2*k, len(surnames))
		g := r.intn(drawAcq0+2*k+1, len(givenNames))
		p.Acquaintances = append(p.Acquaintances, fullNames[s][g])
	}
	nPhotos := r.intn(drawAcq0+2*nAcq, 3)
	var buf [24]byte
	for k := 0; k <= nPhotos; k++ {
		name := append(buf[:0], "IMG_"...)
		name = appendPadInt(name, int64(r.idx), 4)
		name = append(name, '_')
		name = strconv.AppendInt(name, int64(k), 10)
		name = append(name, ".jpg"...)
		p.Photos = append(p.Photos, string(name))
	}
	if r.intn(drawAcq0+2*nAcq+1, 4) == 0 { // some users back up an ID photo to the cloud
		p.Photos = append(p.Photos, "citizen_id_scan.jpg")
	}
	return p
}

// Persona returns the i-th persona, fully materialized. Negative
// indexes are invalid and panic, matching slice semantics.
func (g *Generator) Persona(i int) Persona {
	return g.Ref(i).Persona()
}

// Personas returns personas [0, n).
func (g *Generator) Personas(n int) []Persona {
	out := make([]Persona, n)
	for i := range out {
		out[i] = g.Persona(i)
	}
	return out
}

// phonePrefixes are the +86 mobile prefixes personas cycle through.
var phonePrefixes = []string{"138", "139", "150", "159", "176", "186", "188", "199"}

// appendPadInt appends v zero-padded to at least width digits —
// fmt's %0*d minimum-width semantics, allocation-free.
func appendPadInt(b []byte, v int64, width int) []byte {
	var tmp [20]byte
	d := strconv.AppendInt(tmp[:0], v, 10)
	for n := len(d); n < width; n++ {
		b = append(b, '0')
	}
	return append(b, d...)
}

// fullNames is the interned name vocabulary: every (surname, given)
// combination as one canonical "Surname Given" string, built once at
// init. Personas and acquaintances resolve names through it, so a
// population of any size retains at most len(surnames)×len(givenNames)
// name strings.
var fullNames = func() [][]string {
	out := make([][]string, len(surnames))
	for s, sur := range surnames {
		out[s] = make([]string, len(givenNames))
		for g, giv := range givenNames {
			out[s][g] = sur + " " + giv
		}
	}
	return out
}()

// surnamesLower and givenNamesLower are the lowercase twins the email
// derivation uses, precomputed so per-persona emails never call
// strings.ToLower.
var surnamesLower = lowerAll(surnames)
var givenNamesLower = lowerAll(givenNames)

// lowerAll lowercases a vocabulary once.
func lowerAll(in []string) []string {
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = strings.ToLower(s)
	}
	return out
}

// CitizenIDCheckChar computes the ISO 7064 MOD 11-2 check character for
// the first 17 digits of a citizen ID. It panics if body is not 17
// decimal digits; callers validate with ValidCitizenID instead when
// handling untrusted input.
func CitizenIDCheckChar(body string) byte { return citizenCheckChar(body) }

// citizenCheckChar is the byte/string-generic core of
// CitizenIDCheckChar, so the append-based lazy accessors avoid a
// string conversion per call.
func citizenCheckChar[T ~string | ~[]byte](body T) byte {
	if len(body) != 17 {
		panic("identity: citizen ID body must be 17 digits")
	}
	weights := [17]int{7, 9, 10, 5, 8, 4, 2, 1, 6, 3, 7, 9, 10, 5, 8, 4, 2}
	sum := 0
	for i := 0; i < 17; i++ {
		d := body[i]
		if d < '0' || d > '9' {
			panic("identity: citizen ID body must be decimal digits")
		}
		sum += int(d-'0') * weights[i]
	}
	checkMap := [11]byte{'1', '0', 'X', '9', '8', '7', '6', '5', '4', '3', '2'}
	return checkMap[sum%11]
}

// ValidCitizenID reports whether id is an 18-character citizen ID with
// a correct MOD 11-2 check character.
func ValidCitizenID(id string) bool {
	if len(id) != 18 {
		return false
	}
	for i := 0; i < 17; i++ {
		if id[i] < '0' || id[i] > '9' {
			return false
		}
	}
	last := id[17]
	if last != 'X' && (last < '0' || last > '9') {
		return false
	}
	return CitizenIDCheckChar(id[:17]) == last
}

// LuhnCheckDigit computes the Luhn check digit for a digit string.
// It panics on non-digit input; use ValidLuhn for untrusted data.
func LuhnCheckDigit(body string) byte { return luhnCheckDigit(body) }

// luhnCheckDigit is the byte/string-generic core of LuhnCheckDigit.
func luhnCheckDigit[T ~string | ~[]byte](body T) byte {
	sum := 0
	// Walking right to left, the rightmost body digit is doubled
	// because the check digit will occupy the final (undoubled) slot.
	double := true
	for i := len(body) - 1; i >= 0; i-- {
		d := body[i]
		if d < '0' || d > '9' {
			panic("identity: bankcard body must be decimal digits")
		}
		v := int(d - '0')
		if double {
			v *= 2
			if v > 9 {
				v -= 9
			}
		}
		double = !double
		sum += v
	}
	return byte('0' + (10-sum%10)%10)
}

// ValidLuhn reports whether the full digit string (including its final
// check digit) passes the Luhn checksum.
func ValidLuhn(pan string) bool {
	if len(pan) < 2 {
		return false
	}
	for i := 0; i < len(pan); i++ {
		if pan[i] < '0' || pan[i] > '9' {
			return false
		}
	}
	return LuhnCheckDigit(pan[:len(pan)-1]) == pan[len(pan)-1]
}
