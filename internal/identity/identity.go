// Package identity generates deterministic synthetic personas for the
// Online Account Ecosystem simulation.
//
// The paper's measurement and attack studies operate on real users'
// personal information (names, citizen IDs, cellphone numbers, bankcard
// numbers, addresses, acquaintances). This package substitutes a
// seeded generator that produces structurally valid equivalents:
// citizen IDs carry a real ISO 7064 MOD 11-2 check digit (the GB 11643
// scheme used by Chinese 18-digit IDs the paper's case studies rely
// on), bankcard numbers are Luhn-valid, and phone numbers follow the
// +86 mobile numbering plan. Every persona is a pure function of
// (seed, index), so experiments are reproducible bit for bit.
package identity

import (
	"fmt"
	"strconv"
	"strings"
)

// Persona is one synthetic user: the complete set of personal
// information fields the paper's Table I tracks, plus the historical
// record artifacts (photos, orders) exploited in the cloud-storage
// attack step.
type Persona struct {
	Index      int
	RealName   string
	CitizenID  string // 18 digits, valid MOD 11-2 check digit
	Phone      string // +86 mobile number, unique per persona
	Email      string
	Address    string
	Bankcard   string // Luhn-valid 16-digit PAN
	UserID     string
	StudentID  string
	DeviceType string
	// Acquaintances holds real names of related personas (the social
	// relationship category of personal information).
	Acquaintances []string
	// Photos models cloud-stored historical records; the paper notes
	// that cloud backups often contain citizen-ID photos.
	Photos []string
}

// Generator produces personas deterministically from a seed.
// The zero value is not usable; construct with NewGenerator.
type Generator struct {
	seed int64
}

// NewGenerator returns a Generator whose output is a pure function of
// seed: Persona(i) is stable across runs and machines.
func NewGenerator(seed int64) *Generator {
	return &Generator{seed: seed}
}

// stream is the per-persona draw source: a SplitMix64 generator whose
// whole state is one word. It replaced the earlier per-persona
// math/rand.Rand — seeding a rand.Source initializes a 607-word
// lagged-Fibonacci table per subscriber, which profiled at ~14% of
// campaign CPU at population scale; advancing a splitmix word costs a
// few multiplies. The draw sequence differs from the math/rand-backed
// generation, so persona-derived digests (population.Fingerprint)
// carry a version bump (population.FingerprintVersion = 2).
type stream struct{ state uint64 }

// next advances the SplitMix64 state.
func (s *stream) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn draws uniformly from [0, n). The modulo bias is below 2^-40
// for every n this package uses — irrelevant for synthetic personas,
// where only determinism matters.
func (s *stream) Intn(n int) int { return int(s.next() % uint64(n)) }

// Int63n draws uniformly from [0, n) for wide ranges.
func (s *stream) Int63n(n int64) int64 { return int64(s.next() % uint64(n)) }

// rng derives an independent stream for persona i so that personas can
// be generated in any order (or in parallel) without coordination.
func (g *Generator) rng(i int) *stream {
	// SplitMix64-style scramble keeps streams decorrelated even for
	// adjacent indexes.
	z := uint64(g.seed) + uint64(i)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return &stream{state: z}
}

// Persona returns the i-th persona. Negative indexes are invalid and
// panic, matching slice semantics.
func (g *Generator) Persona(i int) Persona {
	if i < 0 {
		panic("identity: negative persona index")
	}
	r := g.rng(i)
	surname := surnames[r.Intn(len(surnames))]
	given := givenNames[r.Intn(len(givenNames))]
	name := surname + " " + given
	p := Persona{
		Index:      i,
		RealName:   name,
		CitizenID:  genCitizenID(r),
		Phone:      genPhone(i),
		Address:    genAddress(r),
		Bankcard:   genBankcard(r),
		UserID:     fmt.Sprintf("u%07d", i),
		StudentID:  fmt.Sprintf("S%08d", 20100000+i),
		DeviceType: deviceTypes[r.Intn(len(deviceTypes))],
	}
	p.Email = strings.ToLower(surname) + "." + strings.ToLower(given) + strconv.Itoa(i) + "@mail.example"
	nAcq := 2 + r.Intn(4)
	p.Acquaintances = make([]string, 0, nAcq)
	for k := 0; k < nAcq; k++ {
		p.Acquaintances = append(p.Acquaintances,
			surnames[r.Intn(len(surnames))]+" "+givenNames[r.Intn(len(givenNames))])
	}
	nPhotos := r.Intn(3)
	for k := 0; k <= nPhotos; k++ {
		p.Photos = append(p.Photos, fmt.Sprintf("IMG_%04d_%d.jpg", i, k))
	}
	if r.Intn(4) == 0 { // some users back up an ID photo to the cloud
		p.Photos = append(p.Photos, "citizen_id_scan.jpg")
	}
	return p
}

// Personas returns personas [0, n).
func (g *Generator) Personas(n int) []Persona {
	out := make([]Persona, n)
	for i := range out {
		out[i] = g.Persona(i)
	}
	return out
}

// genPhone allocates unique +86 mobile numbers: prefix 13x-19x plus a
// 8-digit subscriber part derived from the index.
func genPhone(i int) string {
	prefixes := []string{"138", "139", "150", "159", "176", "186", "188", "199"}
	pfx := prefixes[i%len(prefixes)]
	return "+86" + pfx + fmt.Sprintf("%08d", i)
}

func genAddress(r *stream) string {
	return fmt.Sprintf("%d %s, %s District, %s",
		1+r.Intn(999),
		streets[r.Intn(len(streets))],
		districts[r.Intn(len(districts))],
		cities[r.Intn(len(cities))])
}

// genCitizenID builds an 18-character ID: 6-digit region, 8-digit
// birth date, 3-digit sequence, and the MOD 11-2 check character.
func genCitizenID(r *stream) string {
	region := regionCodes[r.Intn(len(regionCodes))]
	year := 1955 + r.Intn(50)
	month := 1 + r.Intn(12)
	day := 1 + r.Intn(28)
	seq := r.Intn(1000)
	body := fmt.Sprintf("%s%04d%02d%02d%03d", region, year, month, day, seq)
	return body + string(CitizenIDCheckChar(body))
}

// CitizenIDCheckChar computes the ISO 7064 MOD 11-2 check character for
// the first 17 digits of a citizen ID. It panics if body is not 17
// decimal digits; callers validate with ValidCitizenID instead when
// handling untrusted input.
func CitizenIDCheckChar(body string) byte {
	if len(body) != 17 {
		panic("identity: citizen ID body must be 17 digits")
	}
	weights := [17]int{7, 9, 10, 5, 8, 4, 2, 1, 6, 3, 7, 9, 10, 5, 8, 4, 2}
	sum := 0
	for i := 0; i < 17; i++ {
		d := body[i]
		if d < '0' || d > '9' {
			panic("identity: citizen ID body must be decimal digits")
		}
		sum += int(d-'0') * weights[i]
	}
	checkMap := [11]byte{'1', '0', 'X', '9', '8', '7', '6', '5', '4', '3', '2'}
	return checkMap[sum%11]
}

// ValidCitizenID reports whether id is an 18-character citizen ID with
// a correct MOD 11-2 check character.
func ValidCitizenID(id string) bool {
	if len(id) != 18 {
		return false
	}
	for i := 0; i < 17; i++ {
		if id[i] < '0' || id[i] > '9' {
			return false
		}
	}
	last := id[17]
	if last != 'X' && (last < '0' || last > '9') {
		return false
	}
	return CitizenIDCheckChar(id[:17]) == last
}

// genBankcard returns a Luhn-valid 16-digit PAN with a recognizable
// synthetic IIN so test data cannot be mistaken for a real card.
func genBankcard(r *stream) string {
	body := "62" + fmt.Sprintf("%013d", r.Int63n(1e13))
	return body + string(LuhnCheckDigit(body))
}

// LuhnCheckDigit computes the Luhn check digit for a digit string.
// It panics on non-digit input; use ValidLuhn for untrusted data.
func LuhnCheckDigit(body string) byte {
	sum := 0
	// Walking right to left, the rightmost body digit is doubled
	// because the check digit will occupy the final (undoubled) slot.
	double := true
	for i := len(body) - 1; i >= 0; i-- {
		d := body[i]
		if d < '0' || d > '9' {
			panic("identity: bankcard body must be decimal digits")
		}
		v := int(d - '0')
		if double {
			v *= 2
			if v > 9 {
				v -= 9
			}
		}
		double = !double
		sum += v
	}
	return byte('0' + (10-sum%10)%10)
}

// ValidLuhn reports whether the full digit string (including its final
// check digit) passes the Luhn checksum.
func ValidLuhn(pan string) bool {
	if len(pan) < 2 {
		return false
	}
	for i := 0; i < len(pan); i++ {
		if pan[i] < '0' || pan[i] > '9' {
			return false
		}
	}
	return LuhnCheckDigit(pan[:len(pan)-1]) == pan[len(pan)-1]
}
