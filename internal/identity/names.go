package identity

// Name and place pools for the persona generator. The pools are fixed
// so persona output stays stable; growing them is a compatibility
// break for recorded experiment fixtures.

var surnames = []string{
	"Wang", "Li", "Zhang", "Liu", "Chen", "Yang", "Huang", "Zhao",
	"Wu", "Zhou", "Xu", "Sun", "Ma", "Zhu", "Hu", "Guo",
	"He", "Gao", "Lin", "Luo", "Zheng", "Liang", "Xie", "Song",
	"Tang", "Han", "Feng", "Deng", "Cao", "Peng", "Zeng", "Xiao",
}

var givenNames = []string{
	"Wei", "Fang", "Na", "Min", "Jing", "Lei", "Qiang", "Jun",
	"Yang", "Yong", "Jie", "Juan", "Tao", "Ming", "Chao", "Xiu",
	"Ying", "Hua", "Ping", "Gang", "Yan", "Bo", "Hui", "Xin",
	"Mei", "Ning", "Long", "Fei", "Rui", "Kai", "Lan", "Qing",
}

var streets = []string{
	"Zheda Road", "Wensan Road", "Yuhangtang Road", "Nanshan Road",
	"Beishan Road", "Moganshan Road", "Jiefang Road", "Yan'an Road",
	"Tianmushan Road", "Qingchun Road", "Fengqi Road", "Shuguang Road",
}

var districts = []string{
	"Xihu", "Gongshu", "Shangcheng", "Binjiang", "Yuhang", "Xiaoshan",
	"Haidian", "Chaoyang", "Pudong", "Minhang", "Nanshan", "Futian",
}

var cities = []string{
	"Hangzhou", "Beijing", "Shanghai", "Shenzhen", "Guangzhou",
	"Nanjing", "Chengdu", "Wuhan", "Xi'an", "Suzhou",
}

var deviceTypes = []string{
	"iPhone 11", "iPhone XR", "Huawei P30", "Huawei Mate 20",
	"Xiaomi 9", "OPPO R17", "vivo X27", "Samsung Galaxy S10",
	"OnePlus 7", "iPad Air",
}

// regionCodes are valid-looking 6-digit administrative division codes
// used as citizen-ID prefixes.
var regionCodes = []string{
	"110101", "310101", "330106", "440305", "320102",
	"510104", "420106", "610102", "330103", "440104",
}
