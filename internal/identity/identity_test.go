package identity

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestPersonaDeterministic(t *testing.T) {
	g1 := NewGenerator(42)
	g2 := NewGenerator(42)
	for i := 0; i < 50; i++ {
		a, b := g1.Persona(i), g2.Persona(i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("persona %d differs between identically seeded generators:\n%+v\n%+v", i, a, b)
		}
	}
}

func TestPersonaSeedSensitivity(t *testing.T) {
	a := NewGenerator(1).Persona(0)
	b := NewGenerator(2).Persona(0)
	if a.RealName == b.RealName && a.CitizenID == b.CitizenID && a.Bankcard == b.Bankcard {
		t.Fatalf("different seeds produced identical persona: %+v", a)
	}
}

func TestPersonaOrderIndependence(t *testing.T) {
	g := NewGenerator(7)
	later := g.Persona(13)
	earlier := g.Persona(4)
	g2 := NewGenerator(7)
	if !reflect.DeepEqual(g2.Persona(4), earlier) || !reflect.DeepEqual(g2.Persona(13), later) {
		t.Fatal("persona output depends on generation order")
	}
}

func TestPhoneUniqueness(t *testing.T) {
	g := NewGenerator(3)
	seen := make(map[string]int)
	for i := 0; i < 2000; i++ {
		p := g.Persona(i)
		if prev, dup := seen[p.Phone]; dup {
			t.Fatalf("phone %s assigned to personas %d and %d", p.Phone, prev, i)
		}
		seen[p.Phone] = i
	}
}

func TestPhoneFormat(t *testing.T) {
	p := NewGenerator(0).Persona(123)
	if !strings.HasPrefix(p.Phone, "+861") {
		t.Errorf("phone %q does not look like a +86 mobile number", p.Phone)
	}
	if len(p.Phone) != len("+86")+11 {
		t.Errorf("phone %q has wrong length %d", p.Phone, len(p.Phone))
	}
}

func TestGeneratedCitizenIDsValid(t *testing.T) {
	g := NewGenerator(11)
	for i := 0; i < 500; i++ {
		id := g.Persona(i).CitizenID
		if !ValidCitizenID(id) {
			t.Fatalf("persona %d has invalid citizen ID %q", i, id)
		}
	}
}

func TestGeneratedBankcardsLuhnValid(t *testing.T) {
	g := NewGenerator(11)
	for i := 0; i < 500; i++ {
		pan := g.Persona(i).Bankcard
		if !ValidLuhn(pan) {
			t.Fatalf("persona %d has non-Luhn bankcard %q", i, pan)
		}
		if len(pan) != 16 {
			t.Fatalf("persona %d bankcard %q not 16 digits", i, pan)
		}
	}
}

func TestValidCitizenIDRejectsCorruption(t *testing.T) {
	id := NewGenerator(5).Persona(9).CitizenID
	cases := []string{
		"",
		id[:17],                              // truncated
		id + "0",                             // too long
		"ABCDEFGHIJKLMNOPQ" + string(id[17]), // non-digits
	}
	for _, c := range cases {
		if ValidCitizenID(c) {
			t.Errorf("ValidCitizenID(%q) = true, want false", c)
		}
	}
	// Flipping any single digit must break the checksum.
	for pos := 0; pos < 17; pos++ {
		mutated := []byte(id)
		mutated[pos] = '0' + (mutated[pos]-'0'+1)%10
		if ValidCitizenID(string(mutated)) {
			t.Errorf("single-digit corruption at %d not detected in %q", pos, mutated)
		}
	}
}

func TestValidLuhnRejectsSingleDigitCorruption(t *testing.T) {
	pan := NewGenerator(5).Persona(3).Bankcard
	for pos := 0; pos < len(pan); pos++ {
		mutated := []byte(pan)
		mutated[pos] = '0' + (mutated[pos]-'0'+1)%10
		if ValidLuhn(string(mutated)) {
			t.Errorf("Luhn failed to detect single-digit corruption at %d in %q", pos, mutated)
		}
	}
}

func TestValidLuhnRejectsGarbage(t *testing.T) {
	for _, c := range []string{"", "1", "abcd", "1234x6789", " 1234"} {
		if ValidLuhn(c) {
			t.Errorf("ValidLuhn(%q) = true, want false", c)
		}
	}
}

// Property: the check character is a pure function of the body, and
// regenerating it always validates.
func TestCitizenIDCheckProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		digits := make([]byte, 17)
		for i := range digits {
			digits[i] = byte('0' + r.Intn(10))
		}
		body := string(digits)
		return ValidCitizenID(body + string(CitizenIDCheckChar(body)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Luhn check digit closes any digit body into a valid PAN.
func TestLuhnCheckProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		length := 8 + int(n%12) // bodies of 8..19 digits
		r := rand.New(rand.NewSource(seed))
		digits := make([]byte, length)
		for i := range digits {
			digits[i] = byte('0' + r.Intn(10))
		}
		body := string(digits)
		return ValidLuhn(body + string(LuhnCheckDigit(body)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPersonaFieldsPopulated(t *testing.T) {
	p := NewGenerator(99).Persona(0)
	if p.RealName == "" || p.Email == "" || p.Address == "" ||
		p.UserID == "" || p.StudentID == "" || p.DeviceType == "" {
		t.Fatalf("persona has empty fields: %+v", p)
	}
	if len(p.Acquaintances) < 2 {
		t.Errorf("expected at least 2 acquaintances, got %d", len(p.Acquaintances))
	}
	if len(p.Photos) == 0 {
		t.Error("expected at least one photo record")
	}
	if !strings.Contains(p.Email, "@") {
		t.Errorf("email %q malformed", p.Email)
	}
}

func TestPersonasBatch(t *testing.T) {
	g := NewGenerator(1)
	batch := g.Personas(10)
	if len(batch) != 10 {
		t.Fatalf("Personas(10) returned %d personas", len(batch))
	}
	for i, p := range batch {
		if p.Index != i {
			t.Errorf("persona %d has Index %d", i, p.Index)
		}
	}
}

func TestNegativeIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Persona(-1) did not panic")
		}
	}()
	NewGenerator(0).Persona(-1)
}

func BenchmarkPersona(b *testing.B) {
	g := NewGenerator(42)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Persona(i % 4096)
	}
}

// TestRefAccessorsMatchPersona is the lazy-derivation property test:
// every on-demand Ref accessor must return exactly the field the full
// Persona materialization produces, across seeds and indices, and the
// Append forms must agree with their string twins when handed a dirty
// reusable buffer.
func TestRefAccessorsMatchPersona(t *testing.T) {
	buf := []byte("garbage-prefix")[:0]
	for _, seed := range []int64{0, 1, 42, -9000} {
		g := NewGenerator(seed)
		for _, i := range []int{0, 1, 7, 999, 123456} {
			r := g.Ref(i)
			p := g.Persona(i)
			if r.Index() != i {
				t.Fatalf("Ref(%d).Index() = %d", i, r.Index())
			}
			checks := []struct {
				name, got, want string
			}{
				{"RealName", r.RealName(), p.RealName},
				{"Phone", r.Phone(), p.Phone},
				{"CitizenID", r.CitizenID(), p.CitizenID},
				{"Address", r.Address(), p.Address},
				{"Bankcard", r.Bankcard(), p.Bankcard},
				{"Email", r.Email(), p.Email},
				{"UserID", r.UserID(), p.UserID},
				{"StudentID", r.StudentID(), p.StudentID},
				{"DeviceType", r.DeviceType(), p.DeviceType},
			}
			for _, c := range checks {
				if c.got != c.want {
					t.Fatalf("seed %d idx %d: %s lazy %q != eager %q", seed, i, c.name, c.got, c.want)
				}
			}
			appends := []struct {
				name string
				fn   func([]byte) []byte
				want string
			}{
				{"AppendPhone", r.AppendPhone, p.Phone},
				{"AppendCitizenID", r.AppendCitizenID, p.CitizenID},
				{"AppendAddress", r.AppendAddress, p.Address},
				{"AppendBankcard", r.AppendBankcard, p.Bankcard},
				{"AppendEmail", r.AppendEmail, p.Email},
				{"AppendUserID", r.AppendUserID, p.UserID},
				{"AppendStudentID", r.AppendStudentID, p.StudentID},
			}
			for _, c := range appends {
				buf = c.fn(buf[:0])
				if string(buf) != c.want {
					t.Fatalf("seed %d idx %d: %s into reused buffer = %q, want %q", seed, i, c.name, buf, c.want)
				}
			}
			if got := r.Persona(); !reflect.DeepEqual(got, p) {
				t.Fatalf("seed %d idx %d: Ref.Persona() diverges:\nlazy  %+v\neager %+v", seed, i, got, p)
			}
		}
	}
}
