package collect

import (
	"strings"
	"testing"

	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/identity"
)

func testCatalog() *ecosys.Catalog {
	return ecosys.MustCatalog([]*ecosys.ServiceSpec{
		{
			Name: "a", Domain: ecosys.DomainTravel,
			Presences: []ecosys.Presence{
				{
					Platform: ecosys.PlatformWeb,
					Exposes: []ecosys.Exposure{
						{Field: ecosys.InfoRealName},
						{Field: ecosys.InfoCitizenID, Mask: ecosys.MaskSpec{Masked: true, VisiblePrefix: 6}},
						{Field: ecosys.InfoAcquaintance},
					},
				},
				{
					Platform: ecosys.PlatformMobile,
					Exposes:  []ecosys.Exposure{{Field: ecosys.InfoRealName}, {Field: ecosys.InfoBankcard, Mask: ecosys.MaskSpec{Masked: true, VisibleSuffix: 4}}},
				},
			},
		},
		{
			Name: "b", Domain: ecosys.DomainNews,
			Presences: []ecosys.Presence{
				{Platform: ecosys.PlatformWeb, Exposes: []ecosys.Exposure{{Field: ecosys.InfoRealName}, {Field: ecosys.InfoOrderHistory}}},
			},
		},
	})
}

func TestMeasure(t *testing.T) {
	st := Measure(testCatalog(), ecosys.PlatformWeb)
	if st.Accounts != 2 {
		t.Fatalf("Accounts = %d", st.Accounts)
	}
	if st.FieldCounts[ecosys.InfoRealName] != 2 || st.FieldCounts[ecosys.InfoCitizenID] != 1 {
		t.Errorf("FieldCounts = %v", st.FieldCounts)
	}
	if st.Pct(ecosys.InfoRealName) != 100 || st.Pct(ecosys.InfoCitizenID) != 50 {
		t.Errorf("Pct wrong: %v / %v", st.Pct(ecosys.InfoRealName), st.Pct(ecosys.InfoCitizenID))
	}
	if st.CategoryCounts[ecosys.CategoryIdentity] != 2 {
		t.Errorf("identity category count = %d want 2", st.CategoryCounts[ecosys.CategoryIdentity])
	}
	if st.CategoryCounts[ecosys.CategoryRelationship] != 1 {
		t.Errorf("relationship category count = %d want 1", st.CategoryCounts[ecosys.CategoryRelationship])
	}
	empty := Measure(ecosys.MustCatalog(nil), ecosys.PlatformWeb)
	if empty.Pct(ecosys.InfoRealName) != 0 {
		t.Error("empty catalog Pct should be 0")
	}
}

func TestClassify(t *testing.T) {
	got := Classify(ecosys.NewInfoSet(
		ecosys.InfoRealName, ecosys.InfoCitizenID, ecosys.InfoCellphone,
		ecosys.InfoBankcard, ecosys.InfoChatHistory,
	))
	if len(got[ecosys.CategoryIdentity]) != 2 {
		t.Errorf("identity fields = %v", got[ecosys.CategoryIdentity])
	}
	if len(got[ecosys.CategoryAccount]) != 1 || len(got[ecosys.CategoryProperty]) != 1 || len(got[ecosys.CategoryHistorical]) != 1 {
		t.Errorf("classification = %v", got)
	}
}

func TestHarvestAppliesMasks(t *testing.T) {
	persona := identity.NewGenerator(42).Persona(7)
	cat := testCatalog()
	svc, _ := cat.ByName("a")
	pr, _ := svc.Presence(ecosys.PlatformWeb)

	got := Harvest(pr, persona)
	if got[ecosys.InfoRealName] != persona.RealName {
		t.Errorf("real name = %q want %q", got[ecosys.InfoRealName], persona.RealName)
	}
	cid := got[ecosys.InfoCitizenID]
	if !strings.HasPrefix(cid, persona.CitizenID[:6]) {
		t.Errorf("masked citizen ID %q does not keep prefix", cid)
	}
	if !strings.Contains(cid, "*") {
		t.Errorf("citizen ID %q not masked", cid)
	}
	if !strings.Contains(got[ecosys.InfoAcquaintance], persona.Acquaintances[0]) {
		t.Errorf("acquaintances = %q", got[ecosys.InfoAcquaintance])
	}
	// Unexposed fields are absent.
	if _, ok := got[ecosys.InfoBankcard]; ok {
		t.Error("web presence leaked bankcard")
	}
}

func TestHarvestAllFieldsHaveValues(t *testing.T) {
	persona := identity.NewGenerator(1).Persona(0)
	var exposes []ecosys.Exposure
	for _, f := range ecosys.AllInfoFields() {
		exposes = append(exposes, ecosys.Exposure{Field: f})
	}
	pr := &ecosys.Presence{Platform: ecosys.PlatformWeb, Exposes: exposes}
	got := Harvest(pr, persona)
	for _, f := range ecosys.AllInfoFields() {
		if got[f] == "" {
			t.Errorf("field %v harvested empty", f)
		}
	}
}

func BenchmarkHarvest(b *testing.B) {
	persona := identity.NewGenerator(1).Persona(0)
	cat := testCatalog()
	svc, _ := cat.ByName("a")
	pr, _ := svc.Presence(ecosys.PlatformWeb)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Harvest(pr, persona)
	}
}
