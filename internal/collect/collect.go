// Package collect implements ActFort's Personal Information Collection
// stage (§III.C): classifying what accounts expose into the paper's
// five categories, measuring exposure rates across the ecosystem
// (Table I), and harvesting concrete (masked) values from a persona's
// profile page — the data the live attack scrapes after each login.
package collect

import (
	"strings"

	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/identity"
	"github.com/actfort/actfort/internal/mask"
)

// ExposureStats aggregates post-login information exposure for one
// platform — the rows of Table I.
type ExposureStats struct {
	Platform ecosys.Platform
	// Accounts is the number of presences measured (Table I
	// denominators: 187 web, 56 mobile).
	Accounts int
	// FieldCounts counts accounts exposing each field.
	FieldCounts map[ecosys.InfoField]int
	// CategoryCounts counts accounts exposing at least one field of
	// each category.
	CategoryCounts map[ecosys.InfoCategory]int
}

// Measure computes exposure statistics over one platform.
func Measure(cat *ecosys.Catalog, platform ecosys.Platform) ExposureStats {
	st := ExposureStats{
		Platform:       platform,
		FieldCounts:    make(map[ecosys.InfoField]int),
		CategoryCounts: make(map[ecosys.InfoCategory]int),
	}
	for _, svc := range cat.Services() {
		pr, ok := svc.Presence(platform)
		if !ok {
			continue
		}
		st.Accounts++
		cats := make(map[ecosys.InfoCategory]bool)
		for f := range pr.ExposedFields() {
			st.FieldCounts[f]++
			cats[f.Category()] = true
		}
		for c := range cats {
			st.CategoryCounts[c]++
		}
	}
	return st
}

// Pct returns the percentage of accounts exposing field f.
func (s ExposureStats) Pct(f ecosys.InfoField) float64 {
	if s.Accounts == 0 {
		return 0
	}
	return 100 * float64(s.FieldCounts[f]) / float64(s.Accounts)
}

// Classify groups a field set by category, fields in declaration
// order.
func Classify(fields ecosys.InfoSet) map[ecosys.InfoCategory][]ecosys.InfoField {
	out := make(map[ecosys.InfoCategory][]ecosys.InfoField)
	for _, f := range fields.Sorted() {
		c := f.Category()
		out[c] = append(out[c], f)
	}
	return out
}

// Harvest renders the values a persona's profile page displays for a
// presence, with the presence's masks applied — exactly what an
// attacker scrapes after logging in. Fields with no persona value
// (histories) render as synthetic record lines.
func Harvest(pr *ecosys.Presence, p identity.Persona) map[ecosys.InfoField]string {
	out := make(map[ecosys.InfoField]string, len(pr.Exposes))
	for _, e := range pr.Exposes {
		out[e.Field] = mask.Apply(rawValue(e.Field, p), e.Mask)
	}
	return out
}

// rawValue maps a field to the persona's underlying value.
func rawValue(f ecosys.InfoField, p identity.Persona) string {
	switch f {
	case ecosys.InfoRealName:
		return p.RealName
	case ecosys.InfoCitizenID:
		return p.CitizenID
	case ecosys.InfoCellphone:
		return p.Phone
	case ecosys.InfoEmailAddress:
		return p.Email
	case ecosys.InfoAddress:
		return p.Address
	case ecosys.InfoUserID:
		return p.UserID
	case ecosys.InfoBankcard:
		return p.Bankcard
	case ecosys.InfoStudentID:
		return p.StudentID
	case ecosys.InfoDeviceType:
		return p.DeviceType
	case ecosys.InfoAcquaintance:
		return strings.Join(p.Acquaintances, ", ")
	case ecosys.InfoPhotos:
		// A citizen-ID scan in a cloud backup is readable by whoever
		// opens it (§IV.B.1): render its content inline so a scraper
		// obtains the number, exactly as a human attacker would.
		names := make([]string, 0, len(p.Photos))
		for _, ph := range p.Photos {
			if ph == "citizen_id_scan.jpg" {
				ph += "[" + p.CitizenID + "]"
			}
			names = append(names, ph)
		}
		return strings.Join(names, ", ")
	case ecosys.InfoBindingAccount:
		return "linked accounts on file"
	case ecosys.InfoOrderHistory:
		return "order history: 12 records"
	case ecosys.InfoChatHistory:
		return "chat history: 240 messages"
	}
	return ""
}
