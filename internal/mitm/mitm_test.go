package mitm

import (
	"errors"
	"strings"
	"testing"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/telecom"
)

// scenario builds an LTE victim and an attacker phone on one cell.
func scenario(t *testing.T) (*telecom.Network, *telecom.Cell, *telecom.Terminal, *telecom.Terminal) {
	t.Helper()
	n := telecom.NewNetwork(telecom.Config{KeySpace: a51.KeySpace{Bits: 10}, Seed: 5})
	cell, err := n.AddCell(telecom.Cell{ID: "lbs", ARFCNs: []int{512}, Cipher: telecom.CipherA51, LTE: true})
	if err != nil {
		t.Fatal(err)
	}
	vicSub, err := n.Register("460007770001234", "+8613900004321")
	if err != nil {
		t.Fatal(err)
	}
	victim, err := n.NewTerminal(vicSub, telecom.RATLTE)
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Attach(cell); err != nil {
		t.Fatal(err)
	}
	attSub, err := n.Register("460009990000001", "+8613811110000")
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := n.NewTerminal(attSub, telecom.RATGSM)
	if err != nil {
		t.Fatal(err)
	}
	if err := attacker.Attach(cell); err != nil {
		t.Fatal(err)
	}
	return n, cell, victim, attacker
}

func TestRunFullSequence(t *testing.T) {
	n, cell, victim, attacker := scenario(t)
	atk, err := New(n, victim, cell, attacker, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := atk.Run()
	if err != nil {
		t.Fatalf("Run: %v (steps: %v)", err, res.Timeline())
	}

	if res.VictimIMSI != victim.IMSI() {
		t.Errorf("IMSI = %s", res.VictimIMSI)
	}
	if res.VictimMSISDN != "+8613900004321" {
		t.Errorf("MSISDN = %s", res.VictimMSISDN)
	}

	// All nine Fig 10 steps executed, in order.
	wantOrder := []string{
		StepJam4G, StepDeployFBS, StepVictimCamps, StepIMSICatch,
		StepCloneFVT, StepLAURequest, StepAuthRelay, StepLAUAccept,
		StepRevealMSISDN,
	}
	if len(res.Steps) != len(wantOrder) {
		t.Fatalf("steps = %d want %d: %v", len(res.Steps), len(wantOrder), res.Timeline())
	}
	for i, want := range wantOrder {
		if res.Steps[i].Name != want {
			t.Errorf("step %d = %s want %s", i, res.Steps[i].Name, want)
		}
	}
}

func TestInterceptionIsExclusive(t *testing.T) {
	n, cell, victim, attacker := scenario(t)
	atk, _ := New(n, victim, cell, attacker, Config{})
	res, err := atk.Run()
	if err != nil {
		t.Fatal(err)
	}

	// A service now sends the victim an SMS code.
	if _, err := n.SendSMS("Alipay", res.VictimMSISDN, "Alipay code 667788"); err != nil {
		t.Fatal(err)
	}
	got, ok := res.FVT.LastSMS()
	if !ok || got.Text != "Alipay code 667788" {
		t.Fatalf("attacker FVT inbox: %+v, %v", got, ok)
	}
	// Covertness: the victim handset saw nothing (unlike passive
	// sniffing, where the victim also receives the code).
	if len(victim.Inbox()) != 0 {
		t.Error("victim received the SMS; MitM is not covert")
	}
}

func TestTearDownRestoresVictim(t *testing.T) {
	n, cell, victim, attacker := scenario(t)
	atk, _ := New(n, victim, cell, attacker, Config{})
	res, err := atk.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := atk.TearDown(); err != nil {
		t.Fatal(err)
	}
	if victim.RAT() != telecom.RATLTE {
		t.Errorf("victim RAT after teardown = %v want LTE", victim.RAT())
	}
	if _, err := n.SendSMS("Bank", res.VictimMSISDN, "back to normal"); err != nil {
		t.Fatal(err)
	}
	if got, ok := victim.LastSMS(); !ok || got.Text != "back to normal" {
		t.Errorf("victim inbox after teardown: %+v, %v", got, ok)
	}
}

func TestNewValidation(t *testing.T) {
	n, cell, victim, attacker := scenario(t)
	if _, err := New(nil, victim, cell, attacker, Config{}); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := New(n, nil, cell, attacker, Config{}); err == nil {
		t.Error("nil victim accepted")
	}
	if _, err := New(n, victim, nil, attacker, Config{}); err == nil {
		t.Error("nil cell accepted")
	}
	if _, err := New(n, victim, cell, nil, Config{}); err == nil {
		t.Error("nil attacker terminal accepted")
	}
}

func TestRunFailsWhenFBSCollides(t *testing.T) {
	n, cell, victim, attacker := scenario(t)
	// Occupy the default FBS cell ID to force a deployment failure.
	if _, err := n.AddCell(telecom.Cell{ID: "fbs-lbs", ARFCNs: []int{1512}}); err != nil {
		t.Fatal(err)
	}
	atk, _ := New(n, victim, cell, attacker, Config{})
	res, err := atk.Run()
	if err == nil {
		t.Fatal("Run succeeded despite FBS collision")
	}
	// Jamming already happened; partial progress must be recorded.
	if len(res.Steps) == 0 || res.Steps[0].Name != StepJam4G {
		t.Errorf("partial steps = %v", res.Timeline())
	}
}

func TestGSMNativeVictimNeedsNoDowngradeEffect(t *testing.T) {
	// A victim already on GSM: jamming is a no-op but the attack
	// still works end to end.
	n := telecom.NewNetwork(telecom.Config{KeySpace: a51.KeySpace{Bits: 8}, Seed: 9})
	cell, _ := n.AddCell(telecom.Cell{ID: "lbs", ARFCNs: []int{512}, Cipher: telecom.CipherA51})
	vs, _ := n.Register("46000111", "+8613912345678")
	victim, _ := n.NewTerminal(vs, telecom.RATGSM)
	if err := victim.Attach(cell); err != nil {
		t.Fatal(err)
	}
	as, _ := n.Register("46000222", "+8613800000222")
	attacker, _ := n.NewTerminal(as, telecom.RATGSM)
	if err := attacker.Attach(cell); err != nil {
		t.Fatal(err)
	}
	atk, _ := New(n, victim, cell, attacker, Config{FBSCellID: "evil", FBSARFCN: 900})
	res, err := atk.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimMSISDN != "+8613912345678" {
		t.Errorf("MSISDN = %s", res.VictimMSISDN)
	}
	if res.FBS.ID != "evil" || res.FBS.ARFCNs[0] != 900 {
		t.Errorf("FBS config not honored: %+v", res.FBS)
	}
}

func TestTimelineReadable(t *testing.T) {
	n, cell, victim, attacker := scenario(t)
	atk, _ := New(n, victim, cell, attacker, Config{})
	res, err := atk.Run()
	if err != nil {
		t.Fatal(err)
	}
	lines := res.Timeline()
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"IMSI", "RAND", "caller ID", "rogue cell"} {
		if !strings.Contains(joined, want) {
			t.Errorf("timeline missing %q:\n%s", want, joined)
		}
	}
}

func TestErrNoRevealCallSurfaced(t *testing.T) {
	// If the attacker MSISDN is a registered subscriber with no
	// serving terminal, the reveal call cannot complete.
	n, cell, victim, attacker := scenario(t)
	ghost, err := n.Register("460", "+8613800009999")
	if err != nil {
		t.Fatal(err)
	}
	atk, _ := New(n, victim, cell, attacker, Config{AttackerMSISDN: ghost.MSISDN})
	if _, err := atk.Run(); err == nil {
		t.Fatal("Run succeeded with unreachable attacker number")
	} else if errors.Is(err, ErrNoRevealCall) {
		t.Log("reveal-call failure surfaced as ErrNoRevealCall")
	}
}

func BenchmarkFullTakeover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		n := telecom.NewNetwork(telecom.Config{KeySpace: a51.KeySpace{Bits: 8}, Seed: int64(i)})
		cell, _ := n.AddCell(telecom.Cell{ID: "lbs", ARFCNs: []int{512}, Cipher: telecom.CipherA51, LTE: true})
		vs, _ := n.Register("46000111", "+8613912345678")
		victim, _ := n.NewTerminal(vs, telecom.RATLTE)
		if err := victim.Attach(cell); err != nil {
			b.Fatal(err)
		}
		as, _ := n.Register("46000222", "+8613800000222")
		attacker, _ := n.NewTerminal(as, telecom.RATGSM)
		if err := attacker.Attach(cell); err != nil {
			b.Fatal(err)
		}
		atk, _ := New(n, victim, cell, attacker, Config{})
		b.StartTimer()
		if _, err := atk.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestProbeCrackStep enables the pre-attack A5/1 probe: the rig must
// recover a legitimate-cell session key with the configured backend
// and record the probe step before deploying the FBS.
func TestProbeCrackStep(t *testing.T) {
	n, cell, victim, attacker := scenario(t)
	atk, err := New(n, victim, cell, attacker, Config{Cracker: a51.Bitsliced{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := atk.Run()
	if err != nil {
		t.Fatalf("Run: %v (steps: %v)", err, res.Timeline())
	}
	if res.ProbeKc == 0 {
		t.Fatal("probe recovered no session key")
	}
	if !n.KeySpace().Contains(res.ProbeKc) {
		t.Fatalf("probe Kc %#x outside the network key space", res.ProbeKc)
	}
	found := false
	for _, s := range res.Steps {
		if s.Name == StepProbeA51 {
			found = true
		}
	}
	if !found {
		t.Fatalf("timeline missing %s: %v", StepProbeA51, res.Timeline())
	}
}

// TestProbeSkippedWithoutCracker keeps the seed behavior: no backend
// configured, no probe step, zero ProbeKc.
func TestProbeSkippedWithoutCracker(t *testing.T) {
	n, cell, victim, attacker := scenario(t)
	atk, err := New(n, victim, cell, attacker, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := atk.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbeKc != 0 {
		t.Fatalf("probe ran without a cracker: %#x", res.ProbeKc)
	}
	for _, s := range res.Steps {
		if s.Name == StepProbeA51 {
			t.Fatal("probe step present without a cracker")
		}
	}
}
