// Package mitm implements the paper's active man-in-the-middle attack
// (Fig 7 hardware, Fig 10 message sequence): a 4G jammer downgrades
// the victim to GSM, a fake base station (FBS, "PC + USRP B100 based
// on OsmoNITB") captures the victim's terminal and IMSI, a fake victim
// terminal (FVT, "PC + Motorola C118 based on OsmocomBB") registers
// with the legitimate network by relaying the authentication challenge
// to the captive real SIM, a call reveals the victim's MSISDN, and
// from then on every SMS code for the victim is delivered exclusively
// to the attacker — more covert than passive sniffing because the
// victim's handset receives nothing.
package mitm

import (
	"errors"
	"fmt"

	"github.com/actfort/actfort/internal/telecom"
)

// Step names follow the Fig 10 sequence diagram.
const (
	StepJam4G        = "force-vt-to-gsm"    // 4G jammer downgrades LTE
	StepDeployFBS    = "deploy-fbs"         // fake base station on air
	StepVictimCamps  = "vt-connects-fbs"    // victim camps on the rogue cell
	StepIMSICatch    = "get-imsi"           // identity request
	StepCloneFVT     = "socket-fvt"         // fake victim terminal ready
	StepLAURequest   = "request-lau"        // location update toward LBS
	StepAuthRelay    = "relay-auth"         // RAND relayed, SRES replayed
	StepLAUAccept    = "update-location"    // network now serves the FVT
	StepRevealMSISDN = "call-reveal-msisdn" // caller ID discloses the number
)

// Step is one executed protocol action.
type Step struct {
	Name   string
	Detail string
}

// Result is a successful takeover.
type Result struct {
	Steps        []Step
	VictimIMSI   string
	VictimMSISDN string
	// FVT is the attacker-controlled terminal now serving the victim's
	// traffic; every SMS code lands in its inbox.
	FVT *telecom.Terminal
	// FBS is the rogue cell holding the victim captive.
	FBS *telecom.Cell
}

// Timeline renders the executed steps, one per line, in Fig 10 order.
func (r *Result) Timeline() []string {
	out := make([]string, 0, len(r.Steps))
	for _, s := range r.Steps {
		out = append(out, s.Name+": "+s.Detail)
	}
	return out
}

// Config parameterizes the attack.
type Config struct {
	// FBSCellID names the rogue cell (must be unique in the network).
	FBSCellID string
	// FBSARFCN is the rogue cell's broadcast channel.
	FBSARFCN int
	// AttackerMSISDN receives the MSISDN-revealing call; it must be a
	// registered, attached subscriber (the attacker's own burner).
	AttackerMSISDN string
}

// Common errors.
var (
	ErrVictimStillLTE = errors.New("mitm: victim still on LTE after jamming")
	ErrNoRevealCall   = errors.New("mitm: reveal call did not reach the attacker terminal")
)

// Attack drives one takeover attempt.
type Attack struct {
	net          *telecom.Network
	victim       *telecom.Terminal
	legitCell    *telecom.Cell
	attackerTerm *telecom.Terminal
	cfg          Config
}

// New prepares an attack against victim, whose legitimate serving cell
// is legitCell. attackerTerm is the attacker's own phone (for the
// reveal call).
func New(net *telecom.Network, victim *telecom.Terminal, legitCell *telecom.Cell, attackerTerm *telecom.Terminal, cfg Config) (*Attack, error) {
	if net == nil || victim == nil || legitCell == nil || attackerTerm == nil {
		return nil, errors.New("mitm: nil network, victim, cell or attacker terminal")
	}
	if cfg.FBSCellID == "" {
		cfg.FBSCellID = "fbs-" + legitCell.ID
	}
	if cfg.FBSARFCN == 0 {
		cfg.FBSARFCN = 1000 + legitCell.ARFCNs[0]
	}
	if cfg.AttackerMSISDN == "" {
		cfg.AttackerMSISDN = attackerTerm.MSISDN()
	}
	return &Attack{net: net, victim: victim, legitCell: legitCell, attackerTerm: attackerTerm, cfg: cfg}, nil
}

// Run executes the Fig 10 sequence. On success the returned Result's
// FVT receives all of the victim's SMS traffic and the victim's
// MSISDN is known. Partial progress is returned inside the error path
// result for diagnosis.
func (a *Attack) Run() (*Result, error) {
	res := &Result{}
	step := func(name, detail string, args ...any) {
		res.Steps = append(res.Steps, Step{Name: name, Detail: fmt.Sprintf(detail, args...)})
	}

	// 1. Jam the LTE plane so the victim falls back to GSM.
	if err := a.net.SetLTEJammed(a.legitCell.ID, true); err != nil {
		return res, fmt.Errorf("mitm: jamming: %w", err)
	}
	step(StepJam4G, "LTE jammed on cell %s", a.legitCell.ID)
	if a.victim.RAT() != telecom.RATGSM {
		return res, ErrVictimStillLTE
	}

	// 2. Raise the fake base station, broadcasting louder than every
	// legitimate cell so idle phones prefer it.
	strongest, _ := a.net.StrongestCell()
	power := 100
	if strongest != nil && strongest.Power >= power {
		power = strongest.Power + 10
	}
	fbs, err := a.net.AddCell(telecom.Cell{
		ID:     a.cfg.FBSCellID,
		ARFCNs: []int{a.cfg.FBSARFCN},
		Cipher: telecom.CipherA50, // rogue cells turn encryption off
		Rogue:  true,
		Power:  power,
	})
	if err != nil {
		return res, fmt.Errorf("mitm: deploying FBS: %w", err)
	}
	res.FBS = fbs
	step(StepDeployFBS, "rogue cell %s on ARFCN %d at power %d", fbs.ID, a.cfg.FBSARFCN, power)

	// 3. The victim's own reselection walks it onto the overpowering
	// rogue cell — no cooperation required.
	camped, err := a.victim.Reselect()
	if err != nil {
		return res, fmt.Errorf("mitm: victim reselection: %w", err)
	}
	if camped.ID != fbs.ID {
		return res, fmt.Errorf("mitm: victim reselected %s, not the FBS", camped.ID)
	}
	step(StepVictimCamps, "victim reselected onto %s", fbs.ID)

	// 4. Identity request: any serving cell may ask for the IMSI.
	res.VictimIMSI = a.victim.IMSI()
	step(StepIMSICatch, "IMSI %s", res.VictimIMSI)

	// 5. Fake victim terminal claims the IMSI toward the legit cell.
	fvt, err := a.net.NewCloneTerminal(res.VictimIMSI)
	if err != nil {
		return res, fmt.Errorf("mitm: cloning terminal: %w", err)
	}
	if err := fvt.AttachTo(a.legitCell); err != nil {
		return res, fmt.Errorf("mitm: attaching FVT: %w", err)
	}
	res.FVT = fvt
	step(StepCloneFVT, "FVT attached to legit cell %s as %s", a.legitCell.ID, res.VictimIMSI)

	// 6-8. Location update with relayed authentication: the network
	// challenges the FVT; the FBS forwards RAND to the captive SIM and
	// replays its SRES. GSM's one-way authentication cannot tell the
	// difference.
	rnd, err := a.net.BeginLocationUpdate(res.VictimIMSI)
	if err != nil {
		return res, fmt.Errorf("mitm: LAU request: %w", err)
	}
	step(StepLAURequest, "network issued RAND challenge")
	answer := a.victim.RespondAuth(rnd)
	step(StepAuthRelay, "challenge relayed to captive SIM, SRES replayed")
	if err := a.net.CompleteLocationUpdate(res.VictimIMSI, answer, fvt); err != nil {
		return res, fmt.Errorf("mitm: LAU accept: %w", err)
	}
	step(StepLAUAccept, "network now serves the FVT")

	// 9. Reveal the MSISDN: the FVT calls the attacker's number and
	// the caller ID (resolved from the HLR) discloses it.
	if err := fvt.PlaceCall(a.cfg.AttackerMSISDN); err != nil {
		return res, fmt.Errorf("mitm: reveal call: %w", err)
	}
	calls := a.attackerTerm.Calls()
	if len(calls) == 0 {
		return res, ErrNoRevealCall
	}
	res.VictimMSISDN = calls[len(calls)-1].FromMSISDN
	step(StepRevealMSISDN, "caller ID %s", res.VictimMSISDN)

	return res, nil
}

// TearDown removes the jammer (the rogue cell stays registered in the
// simulated network, but releasing the victim re-attaches it to the
// legitimate cell and restores its service).
func (a *Attack) TearDown() error {
	if err := a.net.SetLTEJammed(a.legitCell.ID, false); err != nil {
		return err
	}
	return a.victim.Attach(a.legitCell)
}
