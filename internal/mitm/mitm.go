// Package mitm implements the paper's active man-in-the-middle attack
// (Fig 7 hardware, Fig 10 message sequence): a 4G jammer downgrades
// the victim to GSM, a fake base station (FBS, "PC + USRP B100 based
// on OsmoNITB") captures the victim's terminal and IMSI, a fake victim
// terminal (FVT, "PC + Motorola C118 based on OsmocomBB") registers
// with the legitimate network by relaying the authentication challenge
// to the captive real SIM, a call reveals the victim's MSISDN, and
// from then on every SMS code for the victim is delivered exclusively
// to the attacker — more covert than passive sniffing because the
// victim's handset receives nothing.
package mitm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/telecom"
)

// Step names follow the Fig 10 sequence diagram.
const (
	StepJam4G        = "force-vt-to-gsm"    // 4G jammer downgrades LTE
	StepProbeA51     = "probe-a51-crack"    // confirm the GSM fallback is crackable
	StepDeployFBS    = "deploy-fbs"         // fake base station on air
	StepVictimCamps  = "vt-connects-fbs"    // victim camps on the rogue cell
	StepIMSICatch    = "get-imsi"           // identity request
	StepCloneFVT     = "socket-fvt"         // fake victim terminal ready
	StepLAURequest   = "request-lau"        // location update toward LBS
	StepAuthRelay    = "relay-auth"         // RAND relayed, SRES replayed
	StepLAUAccept    = "update-location"    // network now serves the FVT
	StepRevealMSISDN = "call-reveal-msisdn" // caller ID discloses the number
)

// Step is one executed protocol action.
type Step struct {
	Name   string
	Detail string
}

// Result is a successful takeover.
type Result struct {
	Steps        []Step
	VictimIMSI   string
	VictimMSISDN string
	// ProbeKc is the session key the optional pre-attack A5/1 probe
	// recovered from the legitimate cell (zero if the probe was
	// skipped), and ProbeCrackTime how long recovery took.
	ProbeKc        uint64
	ProbeCrackTime time.Duration
	// FVT is the attacker-controlled terminal now serving the victim's
	// traffic; every SMS code lands in its inbox.
	FVT *telecom.Terminal
	// FBS is the rogue cell holding the victim captive.
	FBS *telecom.Cell
}

// Timeline renders the executed steps, one per line, in Fig 10 order.
func (r *Result) Timeline() []string {
	out := make([]string, 0, len(r.Steps))
	for _, s := range r.Steps {
		out = append(out, s.Name+": "+s.Detail)
	}
	return out
}

// Config parameterizes the attack.
type Config struct {
	// FBSCellID names the rogue cell (must be unique in the network).
	FBSCellID string
	// FBSARFCN is the rogue cell's broadcast channel.
	FBSARFCN int
	// AttackerMSISDN receives the MSISDN-revealing call; it must be a
	// registered, attached subscriber (the attacker's own burner).
	AttackerMSISDN string
	// Cracker, when non-nil, enables the pre-attack A5/1 probe: after
	// forcing the GSM fallback the rig sends itself a message through
	// the legitimate cell and recovers the session key from the
	// captured bursts — confirming the downgraded plane is passively
	// crackable (the paper's §V.A.2 premise) and measuring the crack
	// cost the covert active path then avoids. Nil skips the probe.
	Cracker a51.Cracker
}

// Common errors.
var (
	ErrVictimStillLTE = errors.New("mitm: victim still on LTE after jamming")
	ErrNoRevealCall   = errors.New("mitm: reveal call did not reach the attacker terminal")
)

// Attack drives one takeover attempt.
type Attack struct {
	net          *telecom.Network
	victim       *telecom.Terminal
	legitCell    *telecom.Cell
	attackerTerm *telecom.Terminal
	cfg          Config
}

// New prepares an attack against victim, whose legitimate serving cell
// is legitCell. attackerTerm is the attacker's own phone (for the
// reveal call).
func New(net *telecom.Network, victim *telecom.Terminal, legitCell *telecom.Cell, attackerTerm *telecom.Terminal, cfg Config) (*Attack, error) {
	if net == nil || victim == nil || legitCell == nil || attackerTerm == nil {
		return nil, errors.New("mitm: nil network, victim, cell or attacker terminal")
	}
	if cfg.FBSCellID == "" {
		cfg.FBSCellID = "fbs-" + legitCell.ID
	}
	if cfg.FBSARFCN == 0 {
		cfg.FBSARFCN = 1000 + legitCell.ARFCNs[0]
	}
	if cfg.AttackerMSISDN == "" {
		cfg.AttackerMSISDN = attackerTerm.MSISDN()
	}
	return &Attack{net: net, victim: victim, legitCell: legitCell, attackerTerm: attackerTerm, cfg: cfg}, nil
}

// Run executes the Fig 10 sequence. On success the returned Result's
// FVT receives all of the victim's SMS traffic and the victim's
// MSISDN is known. Partial progress is returned inside the error path
// result for diagnosis.
func (a *Attack) Run() (*Result, error) {
	res := &Result{}
	step := func(name, detail string, args ...any) {
		res.Steps = append(res.Steps, Step{Name: name, Detail: fmt.Sprintf(detail, args...)})
	}

	// 1. Jam the LTE plane so the victim falls back to GSM.
	if err := a.net.SetLTEJammed(a.legitCell.ID, true); err != nil {
		return res, fmt.Errorf("mitm: jamming: %w", err)
	}
	step(StepJam4G, "LTE jammed on cell %s", a.legitCell.ID)
	if a.victim.RAT() != telecom.RATGSM {
		return res, ErrVictimStillLTE
	}

	// 1b. Optional probe: crack one of the legitimate cell's A5/1
	// sessions to confirm the downgraded GSM plane is breakable before
	// committing hardware to the active takeover. A capture miss (the
	// attacker's burner camped on another cell, so nothing heard on
	// the legit ARFCNs) is inconclusive, not fatal — the active attack
	// itself needs no key recovery. A crack that runs and fails still
	// aborts: it means the rig's key-space model is wrong.
	if a.cfg.Cracker != nil && a.legitCell.Cipher == telecom.CipherA51 {
		kc, dur, err := a.probeCrack()
		switch {
		case errors.Is(err, errProbeNoBurst):
			step(StepProbeA51, "inconclusive: %v", err)
		case err != nil:
			return res, fmt.Errorf("mitm: A5/1 probe: %w", err)
		default:
			res.ProbeKc, res.ProbeCrackTime = kc, dur
			step(StepProbeA51, "legit cell session key %#x recovered in %v via %s",
				kc, dur.Round(time.Microsecond), a.cfg.Cracker.Name())
		}
	}

	// 2. Raise the fake base station, broadcasting louder than every
	// legitimate cell so idle phones prefer it.
	strongest, _ := a.net.StrongestCell()
	power := 100
	if strongest != nil && strongest.Power >= power {
		power = strongest.Power + 10
	}
	fbs, err := a.net.AddCell(telecom.Cell{
		ID:     a.cfg.FBSCellID,
		ARFCNs: []int{a.cfg.FBSARFCN},
		Cipher: telecom.CipherA50, // rogue cells turn encryption off
		Rogue:  true,
		Power:  power,
	})
	if err != nil {
		return res, fmt.Errorf("mitm: deploying FBS: %w", err)
	}
	res.FBS = fbs
	step(StepDeployFBS, "rogue cell %s on ARFCN %d at power %d", fbs.ID, a.cfg.FBSARFCN, power)

	// 3. The victim's own reselection walks it onto the overpowering
	// rogue cell — no cooperation required.
	camped, err := a.victim.Reselect()
	if err != nil {
		return res, fmt.Errorf("mitm: victim reselection: %w", err)
	}
	if camped.ID != fbs.ID {
		return res, fmt.Errorf("mitm: victim reselected %s, not the FBS", camped.ID)
	}
	step(StepVictimCamps, "victim reselected onto %s", fbs.ID)

	// 4. Identity request: any serving cell may ask for the IMSI.
	res.VictimIMSI = a.victim.IMSI()
	step(StepIMSICatch, "IMSI %s", res.VictimIMSI)

	// 5. Fake victim terminal claims the IMSI toward the legit cell.
	fvt, err := a.net.NewCloneTerminal(res.VictimIMSI)
	if err != nil {
		return res, fmt.Errorf("mitm: cloning terminal: %w", err)
	}
	if err := fvt.AttachTo(a.legitCell); err != nil {
		return res, fmt.Errorf("mitm: attaching FVT: %w", err)
	}
	res.FVT = fvt
	step(StepCloneFVT, "FVT attached to legit cell %s as %s", a.legitCell.ID, res.VictimIMSI)

	// 6-8. Location update with relayed authentication: the network
	// challenges the FVT; the FBS forwards RAND to the captive SIM and
	// replays its SRES. GSM's one-way authentication cannot tell the
	// difference.
	rnd, err := a.net.BeginLocationUpdate(res.VictimIMSI)
	if err != nil {
		return res, fmt.Errorf("mitm: LAU request: %w", err)
	}
	step(StepLAURequest, "network issued RAND challenge")
	answer := a.victim.RespondAuth(rnd)
	step(StepAuthRelay, "challenge relayed to captive SIM, SRES replayed")
	if err := a.net.CompleteLocationUpdate(res.VictimIMSI, answer, fvt); err != nil {
		return res, fmt.Errorf("mitm: LAU accept: %w", err)
	}
	step(StepLAUAccept, "network now serves the FVT")

	// 9. Reveal the MSISDN: the FVT calls the attacker's number and
	// the caller ID (resolved from the HLR) discloses it.
	if err := fvt.PlaceCall(a.cfg.AttackerMSISDN); err != nil {
		return res, fmt.Errorf("mitm: reveal call: %w", err)
	}
	calls := a.attackerTerm.Calls()
	if len(calls) == 0 {
		return res, ErrNoRevealCall
	}
	res.VictimMSISDN = calls[len(calls)-1].FromMSISDN
	step(StepRevealMSISDN, "caller ID %s", res.VictimMSISDN)

	return res, nil
}

// probeCrack sends the attacker's own terminal a message through the
// legitimate cell, captures the resulting A5/1 bursts off the air, and
// recovers the session key from the known-plaintext paging burst with
// the configured Cracker — a one-session rehearsal of the passive
// attack, run against traffic the attacker is entitled to.
func (a *Attack) probeCrack() (kc uint64, elapsed time.Duration, err error) {
	// Listener callbacks can fire from any goroutine sending on these
	// ARFCNs (not just our own probe), so burst collection is locked.
	var (
		mu     sync.Mutex
		bursts []telecom.RadioBurst
	)
	cancels := make([]func(), 0, len(a.legitCell.ARFCNs))
	for _, arfcn := range a.legitCell.ARFCNs {
		cancels = append(cancels, a.net.Subscribe(arfcn, func(b telecom.RadioBurst) {
			mu.Lock()
			bursts = append(bursts, b)
			mu.Unlock()
		}))
	}
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	if _, err := a.net.SendSMS("PROBE", a.attackerTerm.MSISDN(), "a5/1 probe"); err != nil {
		return 0, 0, fmt.Errorf("sending probe SMS: %w", err)
	}
	mu.Lock()
	captured := append([]telecom.RadioBurst(nil), bursts...)
	mu.Unlock()
	for _, b := range captured {
		if b.Seq != 0 || !b.Encrypted {
			continue
		}
		ks, err := a51.DeriveKeystream(b.Payload, telecom.PagingPlaintext(b.SessionID))
		if err != nil {
			return 0, 0, err
		}
		start := time.Now()
		kc, err = a.cfg.Cracker.Recover(context.Background(), ks, b.Frame, a.net.KeySpace())
		if err != nil {
			return 0, 0, err
		}
		return kc, time.Since(start), nil
	}
	return 0, 0, errProbeNoBurst
}

// errProbeNoBurst reports a probe that heard no usable traffic on the
// legitimate cell's channels — inconclusive rather than fatal.
var errProbeNoBurst = errors.New("no encrypted paging burst captured on legit cell ARFCNs")

// TearDown removes the jammer (the rogue cell stays registered in the
// simulated network, but releasing the victim re-attaches it to the
// legitimate cell and restores its service).
func (a *Attack) TearDown() error {
	if err := a.net.SetLTEJammed(a.legitCell.ID, false); err != nil {
		return err
	}
	return a.victim.Attach(a.legitCell)
}
