package population

// Domain-separation tags for the deterministic draw streams. Each
// subscriber attribute pulls from its own stream, so adding a new
// attribute never perturbs existing ones (the stability the
// determinism property test relies on).
const (
	tagEnroll uint64 = 0xE14011 + iota
	tagLeak
	tagLeakTier
	tagLeakDeep
	tagCoverage
	tagCipher
	tagReauth
	tagRAND
)

// splitmix advances a SplitMix64 state — the same scramble
// internal/identity uses to decorrelate persona streams.
func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix folds the values into one well-scrambled 64-bit draw. Exported
// (as Mix) for the campaign engine, which keys its per-victim radio
// randomness on the same streams.
func Mix(vs ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range vs {
		h = splitmix(h ^ v)
	}
	return h
}

// mix is the package-local shorthand.
func mix(vs ...uint64) uint64 { return Mix(vs...) }

// Unit maps a draw to [0, 1).
func Unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// unit is the package-local shorthand.
func unit(h uint64) float64 { return Unit(h) }

// Tags reused by the campaign engine so its draws live in the same
// domain-separated space as the population's.
const (
	TagCoverage = tagCoverage
	TagCipher   = tagCipher
	TagReauth   = tagReauth
	TagRAND     = tagRAND
)
