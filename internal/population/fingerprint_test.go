package population

import "testing"

// TestPinnedFingerprints holds FingerprintVersion 2 digests constant
// across code changes: these values were captured from the eager
// (pre-lazy-persona) generator, so any drift means the materialized
// bytes moved and FingerprintVersion must bump. Both generation modes
// must produce them — the lazy representation is a compression of the
// same bytes, never a different population.
func TestPinnedFingerprints(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want uint64
	}{
		{"base", Config{Seed: 42, Size: 3000, ShardSize: 256}, 0x49d49243e886542f},
		{"alt-seed", Config{Seed: 7, Size: 2000, ShardSize: 512}, 0xd3e191b70733f522},
		{"no-leaks-scaled", Config{Seed: 11, Size: 1000, ShardSize: 1000, LeakFraction: -1, EnrollmentScale: 1.5}, 0x3ba20b2a0e86f5ce},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, materialized := range []bool{false, true} {
				cfg := c.cfg
				cfg.MaterializedPersonas = materialized
				p, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if got := p.Fingerprint(); got != c.want {
					t.Errorf("materialized=%v: fingerprint %#x, want pinned %#x (bump FingerprintVersion if the layout changed on purpose)",
						materialized, got, c.want)
				}
			}
		})
	}
}

// TestFingerprintShardGeometry pins that the digest is independent of
// shard geometry: it hashes subscribers in index order, so the same
// population sliced into different shard sizes fingerprints the same.
func TestFingerprintShardGeometry(t *testing.T) {
	var want uint64
	for i, shardSize := range []int{64, 256, 1000, 4096} {
		p, err := New(Config{Seed: 42, Size: 1000, ShardSize: shardSize})
		if err != nil {
			t.Fatal(err)
		}
		got := p.Fingerprint()
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("shardSize=%d: fingerprint %#x, want %#x", shardSize, got, want)
		}
	}
}
