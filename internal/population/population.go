// Package population generates the synthetic subscriber base the
// population-scale campaign engine attacks: millions of personas, each
// with a SIM identity, a service-enrollment profile drawn from the
// calibrated ecosystem catalog, and (for a configurable fraction) a
// presence in the attacker's leaked-records databases.
//
// The generator is deterministic, seeded and sharded: subscriber i is
// a pure function of (seed, i), shards cover contiguous index ranges
// and can be materialized independently and in parallel, and nothing
// is retained between Shard calls — a campaign streams shards through
// a worker pool without ever holding the whole population in memory.
//
// Since the lazy-persona rework the default Shard is COMPACT: a
// subscriber is its index, an identity.Ref (seed + index, 16 bytes),
// an arena-carved enrollment bitset and two leak flags — no persona
// strings, no per-subscriber leak records, no shard-local leak store.
// Attribute bytes (IMSI, phone, name, address) derive on demand from
// the Ref's draw stream exactly when a consumer touches them, and
// AppendLeakRecords rebuilds the attacker-visible dump rows from the
// same streams when the campaign harvests a shard. Shards recycle
// through a pool (Release), so steady-state streaming allocates
// nothing per subscriber. Config.MaterializedPersonas restores the
// eager path — every persona field and leak record materialized, the
// shard-local Leaks store populated — as an ablation knob mirroring
// campaign.Config.ScalarRadio/ScalarReplay: same results, different
// cost.
//
// That purity is the invariant every batch≡scalar equivalence test
// upstream rests on: regenerating a shard yields bit-identical
// subscribers (Fingerprint pins it, versioned by FingerprintVersion,
// computed over the fully materialized form in either mode), so two
// campaign runs over one seed differ only in engine mechanics, never
// in the world being attacked.
package population

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"
	"sync"
	"unsafe"

	"github.com/actfort/actfort/internal/dataset"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/identity"
	"github.com/actfort/actfort/internal/slab"
	"github.com/actfort/actfort/internal/socialdb"
)

// DefaultShardSize batches subscribers per shard: big enough to
// amortize per-shard setup (a sniffer rig, a partial-metrics frame),
// small enough that a worker's resident set stays in cache.
const DefaultShardSize = 4096

// Config parameterizes a Population.
type Config struct {
	// Seed drives every draw; same seed, same population, bit for bit.
	Seed int64
	// Size is the subscriber count.
	Size int
	// ShardSize bounds subscribers per shard (0 = DefaultShardSize).
	ShardSize int
	// Catalog is the service ecosystem enrollments are drawn from
	// (nil = the calibrated 201-service dataset.Default catalog).
	Catalog *ecosys.Catalog
	// LeakFraction is the share of subscribers present in the leaked
	// personal-information databases of §V.A.1 (0 = DefaultLeakFraction;
	// negative = nobody leaked).
	LeakFraction float64
	// EnrollmentScale multiplies every service-adoption probability
	// (0 = 1.0). Raising it densifies the account graph per victim.
	EnrollmentScale float64
	// MaterializedPersonas restores the eager generation path: every
	// subscriber carries its full persona, IMSI string and leak record,
	// and each shard owns a populated Leaks store. Results are
	// byte-identical to the default lazy path (the equivalence suite
	// pins it); only allocation behavior differs. Ablation knob.
	MaterializedPersonas bool
}

// DefaultLeakFraction matches the paper's observation that merged
// breach dumps cover a large minority of active phone numbers.
const DefaultLeakFraction = 0.35

// LeakClass buckets a subscriber's presence in the attacker's leak
// databases — the compact stand-in for Record.Source string
// comparisons on the campaign hot path.
type LeakClass uint8

const (
	// LeakNone marks a subscriber absent from every leak database.
	LeakNone LeakClass = iota
	// LeakBreach marks a full breach row (name and address, sometimes
	// the citizen ID) — Source "2016-breach".
	LeakBreach
	// LeakWiFi marks a phishing-WiFi harvest (phone number only) —
	// Source "phishing-wifi".
	LeakWiFi
)

// Leak record source labels (§V.A.1's two source tiers). Shared
// constants so every record of a tier aliases one canonical string.
const (
	SourceBreach = "2016-breach"
	SourceWiFi   = "phishing-wifi"
)

// Subscriber is one member of the population. In the default lazy mode
// only Index, Ref, Enrolled, Leaked and Class are populated; IMSI,
// Persona and Record stay zero and attribute bytes derive on demand
// (AppendIMSI, Ref accessors, AppendLeakRecords). With
// Config.MaterializedPersonas every field is filled eagerly.
type Subscriber struct {
	// Index is the global subscriber index (also the persona index).
	Index int
	// Ref is the lazy persona handle (seed + index); always set.
	Ref identity.Ref
	// IMSI is the SIM identity campaigns synthesize traffic for
	// (materialized mode only; derive with AppendIMSI otherwise).
	IMSI string
	// Persona holds the synthetic personal information — nil in lazy
	// mode (derive fields through Ref), allocated per subscriber in
	// materialized mode. A pointer, not a value: the compact subscriber
	// must not pay the struct's 200 zero bytes per member.
	Persona *identity.Persona
	// Enrolled is the set of catalog services (by catalog order index)
	// the subscriber holds accounts on. The bitset is carved from the
	// shard's arena: valid until the shard is Released.
	Enrolled ServiceSet
	// Leaked reports presence in the attacker's leak databases; Class
	// refines it to the source tier. Both are set in every mode.
	Leaked bool
	Class  LeakClass
	// Record is the leaked entry as the attacker sees it — nil in lazy
	// mode (derive with AppendLeakRecords) and for unleaked
	// subscribers, allocated in materialized mode when Leaked.
	Record *socialdb.Record
}

// AppendIMSI appends the subscriber's 15-digit IMSI.
func (s *Subscriber) AppendIMSI(b []byte) []byte { return AppendIMSI(b, s.Index) }

// ServiceSet is a bitset over catalog service indices.
type ServiceSet []uint64

// Has reports membership of service index i.
func (s ServiceSet) Has(i int) bool {
	w := i >> 6
	return w < len(s) && s[w]>>(uint(i)&63)&1 == 1
}

// Count returns the number of enrolled services.
func (s ServiceSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Shard is one contiguous slice of the population.
type Shard struct {
	Index int
	// Start and End bound the subscriber index range [Start, End).
	Start, End int
	// Subscribers holds the shard's members (compact in lazy mode).
	Subscribers []Subscriber
	// Leaks is the shard-local leaked-records store — populated only in
	// materialized mode, nil in lazy mode (campaign harvest rebuilds the
	// records straight into its global store via AppendLeakRecords).
	Leaks *socialdb.DB
	// LeakCount is the number of leaked subscribers in the shard, valid
	// in both modes (phones are unique per index, so it equals the
	// record count the shard contributes to a merged leak database).
	LeakCount int

	// enroll is the arena every subscriber's Enrolled bitset is carved
	// from; one block backs the whole shard and is recycled on Release.
	enroll slab.Slab[uint64]
	owner  *Population
}

// MemBytes estimates the shard's resident bytes: the subscriber slice
// plus the enrollment arena. In lazy mode this is the whole resident
// cost of streaming the shard; materialized personas add their string
// heap on top (not counted here).
func (sh *Shard) MemBytes() int {
	return cap(sh.Subscribers)*int(unsafe.Sizeof(Subscriber{})) + sh.enroll.Len()*8
}

// Release returns the shard to its population's pool for reuse by a
// later Shard call. The shard, its Subscribers and every Enrolled
// bitset are invalid afterwards. Releasing is optional — unreleased
// shards are garbage collected — but steady-state streaming (the
// campaign worker pool) recycles every shard so generation allocates
// nothing per subscriber.
func (sh *Shard) Release() {
	if sh.owner != nil {
		sh.owner.pool.Put(sh)
	}
}

// Population is a deterministic subscriber generator. Safe for
// concurrent use: all generator state is immutable after New (the
// shard pool is internally synchronized).
type Population struct {
	cfg      Config
	catalog  *ecosys.Catalog
	services []string
	adoption []float64
	gen      *identity.Generator
	words    int // enrollment bitset words per subscriber
	pool     sync.Pool
}

// New validates the config and precomputes the per-service adoption
// rates. No subscribers are materialized yet.
func New(cfg Config) (*Population, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("population: size %d <= 0", cfg.Size)
	}
	if cfg.ShardSize == 0 {
		cfg.ShardSize = DefaultShardSize
	}
	if cfg.ShardSize < 0 {
		return nil, fmt.Errorf("population: shard size %d < 0", cfg.ShardSize)
	}
	if cfg.Catalog == nil {
		cat, err := dataset.Default()
		if err != nil {
			return nil, err
		}
		cfg.Catalog = cat
	}
	if cfg.LeakFraction == 0 {
		cfg.LeakFraction = DefaultLeakFraction
	}
	if cfg.EnrollmentScale == 0 {
		cfg.EnrollmentScale = 1.0
	}
	p := &Population{
		cfg:      cfg,
		catalog:  cfg.Catalog,
		gen:      identity.NewGenerator(cfg.Seed),
		adoption: adoptionRates(cfg.Catalog, cfg.EnrollmentScale),
	}
	p.words = (len(p.adoption) + 63) / 64
	p.pool.New = func() any { return &Shard{owner: p} }
	for _, svc := range cfg.Catalog.Services() {
		p.services = append(p.services, svc.Name)
	}
	return p, nil
}

// Size returns the subscriber count.
func (p *Population) Size() int { return p.cfg.Size }

// Seed returns the generator seed (campaigns reuse it to key the
// telecom substrate so synthesized Kc values are reproducible).
func (p *Population) Seed() int64 { return p.cfg.Seed }

// ShardSize returns the resolved per-shard subscriber count.
func (p *Population) ShardSize() int { return p.cfg.ShardSize }

// LeakFraction returns the resolved leak fraction (negative = nobody
// leaked); campaign checkpoints pin it in the run manifest.
func (p *Population) LeakFraction() float64 { return p.cfg.LeakFraction }

// EnrollmentScale returns the resolved adoption multiplier.
func (p *Population) EnrollmentScale() float64 { return p.cfg.EnrollmentScale }

// Materialized reports whether the population generates eager
// (materialized-persona) shards instead of the default compact ones.
func (p *Population) Materialized() bool { return p.cfg.MaterializedPersonas }

// Catalog returns the ecosystem catalog enrollments refer to.
func (p *Population) Catalog() *ecosys.Catalog { return p.catalog }

// Services returns catalog service names in enrollment-index order.
// Callers must not mutate the returned slice.
func (p *Population) Services() []string { return p.services }

// NumShards returns how many shards cover the population.
func (p *Population) NumShards() int {
	return (p.cfg.Size + p.cfg.ShardSize - 1) / p.cfg.ShardSize
}

// ShardBounds returns the index range [start, end) of shard i.
func (p *Population) ShardBounds(i int) (start, end int) {
	start = i * p.cfg.ShardSize
	end = start + p.cfg.ShardSize
	if end > p.cfg.Size {
		end = p.cfg.Size
	}
	return start, end
}

// Shard materializes shard i. Shards are independent: any subset may
// be generated, in any order, from any number of goroutines. The
// returned shard may reuse the storage of a previously Released one.
func (p *Population) Shard(i int) *Shard {
	if i < 0 || i >= p.NumShards() {
		panic(fmt.Sprintf("population: shard %d out of range [0, %d)", i, p.NumShards()))
	}
	start, end := p.ShardBounds(i)
	n := end - start
	sh := p.pool.Get().(*Shard)
	sh.Index, sh.Start, sh.End = i, start, end
	sh.LeakCount = 0
	sh.Leaks = nil
	sh.enroll.Reset()
	if cap(sh.Subscribers) < n {
		sh.Subscribers = make([]Subscriber, n)
	} else {
		sh.Subscribers = sh.Subscribers[:n]
	}
	if p.cfg.MaterializedPersonas {
		sh.Leaks = socialdb.New()
		for idx := start; idx < end; idx++ {
			sub := &sh.Subscribers[idx-start]
			p.fillEager(sub, idx)
			if sub.Leaked {
				sh.LeakCount++
				sh.Leaks.Add(*sub.Record)
			}
		}
		return sh
	}
	seed := uint64(p.cfg.Seed)
	for idx := start; idx < end; idx++ {
		sub := &sh.Subscribers[idx-start]
		*sub = Subscriber{
			Index: idx,
			Ref:   p.gen.Ref(idx),
		}
		sub.Enrolled = p.enrollmentInto(&sh.enroll, idx)
		if unit(mix(seed, tagLeak, uint64(idx))) < p.cfg.LeakFraction {
			sub.Leaked = true
			sub.Class = p.leakClass(idx)
			sh.LeakCount++
		}
	}
	return sh
}

// fillEager materializes one member completely — the ablation path and
// the canonical form Fingerprint hashes. Pure function of (seed, idx).
func (p *Population) fillEager(sub *Subscriber, idx int) {
	ref := p.gen.Ref(idx)
	persona := ref.Persona()
	*sub = Subscriber{
		Index:   idx,
		Ref:     ref,
		IMSI:    IMSIFor(idx),
		Persona: &persona,
	}
	sub.Enrolled = p.enrollment(idx)
	seed := uint64(p.cfg.Seed)
	if unit(mix(seed, tagLeak, uint64(idx))) < p.cfg.LeakFraction {
		sub.Leaked = true
		sub.Class = p.leakClass(idx)
		rec := p.leakRecord(idx, persona)
		sub.Record = &rec
	}
}

// leakClass draws the source tier of a leaked subscriber.
func (p *Population) leakClass(idx int) LeakClass {
	if unit(mix(uint64(p.cfg.Seed), tagLeakTier, uint64(idx))) < 0.75 {
		return LeakBreach
	}
	return LeakWiFi
}

// IMSIFor maps a subscriber index to its 15-digit IMSI (MCC/MNC 46000,
// the PLMN the paper's field setup observed).
func IMSIFor(idx int) string {
	return string(AppendIMSI(make([]byte, 0, 15), idx))
}

// AppendIMSI appends the 15-digit IMSI of subscriber idx — the
// allocation-free form campaigns carve per-shard IMSI bytes with.
func AppendIMSI(b []byte, idx int) []byte {
	b = append(b, "46000"...)
	var tmp [20]byte
	d := tmp[:0]
	for v := idx; ; {
		d = append(d, byte('0'+v%10))
		v /= 10
		if v == 0 {
			break
		}
	}
	for n := len(d); n < 10; n++ {
		b = append(b, '0')
	}
	for i := len(d) - 1; i >= 0; i-- {
		b = append(b, d[i])
	}
	return b
}

// enrollment draws the subscriber's service set into fresh storage.
func (p *Population) enrollment(idx int) ServiceSet {
	set := make(ServiceSet, p.words)
	p.fillEnrollment(set, idx)
	return set
}

// enrollmentInto draws the service set into a carve of the shard's
// arena.
func (p *Population) enrollmentInto(arena *slab.Slab[uint64], idx int) ServiceSet {
	set := ServiceSet(arena.Grab(p.words))
	clear(set)
	p.fillEnrollment(set, idx)
	return set
}

// fillEnrollment draws the subscriber's service set: one independent,
// index-keyed draw per service, so the profile is order-independent
// and shards need no coordination.
func (p *Population) fillEnrollment(set ServiceSet, idx int) {
	seed := uint64(p.cfg.Seed)
	for j, rate := range p.adoption {
		if unit(mix(seed, tagEnroll, uint64(idx), uint64(j))) < rate {
			set[j>>6] |= 1 << (uint(j) & 63)
		}
	}
}

// leakRecord builds the attacker-visible dump entry. Two tiers mirror
// §V.A.1's sources: full breach rows (name and address, sometimes the
// citizen ID) and phishing-WiFi harvests (phone number only).
func (p *Population) leakRecord(idx int, persona identity.Persona) socialdb.Record {
	seed := uint64(p.cfg.Seed)
	rec := socialdb.Record{Phone: persona.Phone}
	if p.leakClass(idx) == LeakBreach {
		rec.Source = SourceBreach
		rec.RealName = persona.RealName
		rec.Address = persona.Address
		if unit(mix(seed, tagLeakDeep, uint64(idx))) < 0.40 {
			rec.CitizenID = persona.CitizenID
		}
	} else {
		rec.Source = SourceWiFi
	}
	return rec
}

// AppendLeakRecords derives the leak-database rows of every leaked
// subscriber in sh and appends them to dst — the lazy twin of the
// materialized Shard.Leaks store, byte-identical record for record.
// Variable-length string fields (phone, address, citizen ID) are
// carved from arena; names and source labels resolve to interned
// vocabulary strings. The records are built to outlive the shard:
// arena must never be Reset while any returned record is retained
// (campaign harvest uses a grow-only per-worker arena), and tmp is a
// reusable scratch buffer (may be nil).
func (p *Population) AppendLeakRecords(dst []socialdb.Record, sh *Shard, arena *slab.Slab[byte], tmp []byte) ([]socialdb.Record, []byte) {
	seed := uint64(p.cfg.Seed)
	for i := range sh.Subscribers {
		sub := &sh.Subscribers[i]
		if !sub.Leaked {
			continue
		}
		rec := socialdb.Record{}
		tmp = sub.Ref.AppendPhone(tmp[:0])
		rec.Phone = slab.StringOf(arena, tmp)
		if sub.Class == LeakBreach {
			rec.Source = SourceBreach
			rec.RealName = sub.Ref.RealName()
			tmp = sub.Ref.AppendAddress(tmp[:0])
			rec.Address = slab.StringOf(arena, tmp)
			if unit(mix(seed, tagLeakDeep, uint64(sub.Index))) < 0.40 {
				tmp = sub.Ref.AppendCitizenID(tmp[:0])
				rec.CitizenID = slab.StringOf(arena, tmp)
			}
		} else {
			rec.Source = SourceWiFi
		}
		dst = append(dst, rec)
	}
	return dst, tmp
}

// domainAdoption is the base probability that a subscriber holds an
// account on the leading service of a domain; within a domain the
// rate decays geometrically with catalog rank (everyone has the top
// messenger, few have the fifth). The values are chosen so the mean
// enrollment lands near the paper's per-user account footprint
// (roughly a dozen services) on the calibrated 201-service catalog.
var domainAdoption = map[ecosys.Domain]float64{
	ecosys.DomainFintech:   0.52,
	ecosys.DomainEmail:     0.78,
	ecosys.DomainSocial:    0.64,
	ecosys.DomainECommerce: 0.46,
	ecosys.DomainTravel:    0.18,
	ecosys.DomainCloud:     0.30,
	ecosys.DomainNews:      0.12,
	ecosys.DomainEducation: 0.08,
	ecosys.DomainGaming:    0.16,
	ecosys.DomainHealth:    0.06,
	ecosys.DomainStreaming: 0.26,
	ecosys.DomainLifestyle: 0.22,
}

// adoptionRank is the per-rank decay within a domain.
const adoptionRank = 0.72

// adoptionFloor keeps long-tail services reachable at all.
const adoptionFloor = 0.004

// adoptionRates computes per-service adoption probabilities in
// catalog order.
func adoptionRates(cat *ecosys.Catalog, scale float64) []float64 {
	rank := make(map[ecosys.Domain]int)
	out := make([]float64, 0, cat.Len())
	for _, svc := range cat.Services() {
		base, ok := domainAdoption[svc.Domain]
		if !ok {
			base = 0.10
		}
		r := rank[svc.Domain]
		rank[svc.Domain]++
		rate := base * math.Pow(adoptionRank, float64(r))
		if rate < adoptionFloor {
			rate = adoptionFloor
		}
		rate *= scale
		if rate > 1 {
			rate = 1
		}
		out = append(out, rate)
	}
	return out
}

// AdoptionRates returns a copy of the per-service adoption
// probabilities, catalog order.
func (p *Population) AdoptionRates() []float64 {
	return append([]float64(nil), p.adoption...)
}

// FingerprintVersion identifies the generation of the persona draw
// streams folded into Fingerprint. Same seed + same version ⇒ same
// fingerprint across runs and machines; the version bumps whenever
// the draw pipeline changes the materialized bytes.
//
//	v1: per-persona math/rand sources.
//	v2: identity moved to single-word splitmix streams (seeding a
//	    rand.Source cost a 607-word table init per subscriber, ~14% of
//	    campaign CPU at 1M subscribers). Unchanged by the lazy-persona
//	    rework: lazy attribute derivation is draw-position-identical to
//	    the eager builder, so the materialized bytes never moved (the
//	    pinned-fingerprint test holds v2 digests constant).
const FingerprintVersion = 2

// Fingerprint hashes every subscriber's complete materialized state
// (identity, persona, enrollment, leak record) into one FNV-64 digest,
// prefixed with FingerprintVersion. Two populations with equal
// fingerprints are byte-identical; the determinism property test pins
// same-seed reproducibility with it. The digest covers the fully
// materialized form regardless of Config.MaterializedPersonas — the
// lazy representation is a compression of the same bytes, and the
// digest is also independent of shard geometry (subscribers hash in
// index order).
func (p *Population) Fingerprint() uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte{FingerprintVersion})
	buf := make([]byte, 0, 512)
	var sub Subscriber
	for idx := 0; idx < p.cfg.Size; idx++ {
		p.fillEager(&sub, idx)
		buf = appendSubscriber(buf[:0], sub)
		_, _ = h.Write(buf)
	}
	return h.Sum64()
}

// appendSubscriber canonically serializes one fully materialized
// subscriber.
func appendSubscriber(buf []byte, sub Subscriber) []byte {
	appendStr := func(s string) {
		buf = append(buf, byte(len(s)>>8), byte(len(s)))
		buf = append(buf, s...)
	}
	buf = append(buf,
		byte(sub.Index>>24), byte(sub.Index>>16), byte(sub.Index>>8), byte(sub.Index))
	appendStr(sub.IMSI)
	pe := *sub.Persona
	appendStr(pe.RealName)
	appendStr(pe.CitizenID)
	appendStr(pe.Phone)
	appendStr(pe.Email)
	appendStr(pe.Address)
	appendStr(pe.Bankcard)
	appendStr(pe.UserID)
	appendStr(pe.StudentID)
	appendStr(pe.DeviceType)
	for _, a := range pe.Acquaintances {
		appendStr(a)
	}
	for _, ph := range pe.Photos {
		appendStr(ph)
	}
	for _, w := range sub.Enrolled {
		for s := 56; s >= 0; s -= 8 {
			buf = append(buf, byte(w>>uint(s)))
		}
	}
	if sub.Leaked {
		buf = append(buf, 1)
		appendStr(sub.Record.Phone)
		appendStr(sub.Record.RealName)
		appendStr(sub.Record.Address)
		appendStr(sub.Record.CitizenID)
		appendStr(sub.Record.Source)
	} else {
		buf = append(buf, 0)
	}
	return buf
}
