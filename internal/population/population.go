// Package population generates the synthetic subscriber base the
// population-scale campaign engine attacks: millions of personas, each
// with a SIM identity, a service-enrollment profile drawn from the
// calibrated ecosystem catalog, and (for a configurable fraction) a
// presence in the attacker's leaked-records databases.
//
// The generator is deterministic, seeded and sharded: subscriber i is
// a pure function of (seed, i), shards cover contiguous index ranges
// and can be materialized independently and in parallel, and nothing
// is retained between Shard calls — a campaign streams shards through
// a worker pool without ever holding the whole population in memory.
//
// That purity is the invariant every batch≡scalar equivalence test
// upstream rests on: regenerating a shard yields bit-identical
// subscribers (Fingerprint pins it, versioned by FingerprintVersion),
// so two campaign runs over one seed differ only in engine mechanics,
// never in the world being attacked.
package population

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"

	"github.com/actfort/actfort/internal/dataset"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/identity"
	"github.com/actfort/actfort/internal/socialdb"
)

// DefaultShardSize batches subscribers per shard: big enough to
// amortize per-shard setup (a sniffer rig, a partial-metrics frame),
// small enough that a worker's resident set stays in cache.
const DefaultShardSize = 4096

// Config parameterizes a Population.
type Config struct {
	// Seed drives every draw; same seed, same population, bit for bit.
	Seed int64
	// Size is the subscriber count.
	Size int
	// ShardSize bounds subscribers per shard (0 = DefaultShardSize).
	ShardSize int
	// Catalog is the service ecosystem enrollments are drawn from
	// (nil = the calibrated 201-service dataset.Default catalog).
	Catalog *ecosys.Catalog
	// LeakFraction is the share of subscribers present in the leaked
	// personal-information databases of §V.A.1 (0 = DefaultLeakFraction;
	// negative = nobody leaked).
	LeakFraction float64
	// EnrollmentScale multiplies every service-adoption probability
	// (0 = 1.0). Raising it densifies the account graph per victim.
	EnrollmentScale float64
}

// DefaultLeakFraction matches the paper's observation that merged
// breach dumps cover a large minority of active phone numbers.
const DefaultLeakFraction = 0.35

// Subscriber is one member of the population.
type Subscriber struct {
	// Index is the global subscriber index (also the persona index).
	Index int
	// IMSI is the SIM identity campaigns synthesize traffic for.
	IMSI string
	// Persona holds the synthetic personal information.
	Persona identity.Persona
	// Enrolled is the set of catalog services (by catalog order index)
	// the subscriber holds accounts on.
	Enrolled ServiceSet
	// Leaked reports presence in the attacker's leak databases;
	// Record is the zero value when false.
	Leaked bool
	// Record is the leaked entry as the attacker sees it.
	Record socialdb.Record
}

// ServiceSet is a bitset over catalog service indices.
type ServiceSet []uint64

// Has reports membership of service index i.
func (s ServiceSet) Has(i int) bool {
	w := i >> 6
	return w < len(s) && s[w]>>(uint(i)&63)&1 == 1
}

// Count returns the number of enrolled services.
func (s ServiceSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Shard is one contiguous slice of the population.
type Shard struct {
	Index int
	// Start and End bound the subscriber index range [Start, End).
	Start, End int
	// Subscribers holds the materialized members.
	Subscribers []Subscriber
	// Leaks is the shard-local leaked-records store; campaign
	// ingestion merges these into one global socialdb.DB.
	Leaks *socialdb.DB
}

// Population is a deterministic subscriber generator. Safe for
// concurrent use: all state is immutable after New.
type Population struct {
	cfg      Config
	catalog  *ecosys.Catalog
	services []string
	adoption []float64
	gen      *identity.Generator
}

// New validates the config and precomputes the per-service adoption
// rates. No subscribers are materialized yet.
func New(cfg Config) (*Population, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("population: size %d <= 0", cfg.Size)
	}
	if cfg.ShardSize == 0 {
		cfg.ShardSize = DefaultShardSize
	}
	if cfg.ShardSize < 0 {
		return nil, fmt.Errorf("population: shard size %d < 0", cfg.ShardSize)
	}
	if cfg.Catalog == nil {
		cat, err := dataset.Default()
		if err != nil {
			return nil, err
		}
		cfg.Catalog = cat
	}
	if cfg.LeakFraction == 0 {
		cfg.LeakFraction = DefaultLeakFraction
	}
	if cfg.EnrollmentScale == 0 {
		cfg.EnrollmentScale = 1.0
	}
	p := &Population{
		cfg:      cfg,
		catalog:  cfg.Catalog,
		gen:      identity.NewGenerator(cfg.Seed),
		adoption: adoptionRates(cfg.Catalog, cfg.EnrollmentScale),
	}
	for _, svc := range cfg.Catalog.Services() {
		p.services = append(p.services, svc.Name)
	}
	return p, nil
}

// Size returns the subscriber count.
func (p *Population) Size() int { return p.cfg.Size }

// Seed returns the generator seed (campaigns reuse it to key the
// telecom substrate so synthesized Kc values are reproducible).
func (p *Population) Seed() int64 { return p.cfg.Seed }

// ShardSize returns the resolved per-shard subscriber count.
func (p *Population) ShardSize() int { return p.cfg.ShardSize }

// LeakFraction returns the resolved leak fraction (negative = nobody
// leaked); campaign checkpoints pin it in the run manifest.
func (p *Population) LeakFraction() float64 { return p.cfg.LeakFraction }

// EnrollmentScale returns the resolved adoption multiplier.
func (p *Population) EnrollmentScale() float64 { return p.cfg.EnrollmentScale }

// Catalog returns the ecosystem catalog enrollments refer to.
func (p *Population) Catalog() *ecosys.Catalog { return p.catalog }

// Services returns catalog service names in enrollment-index order.
// Callers must not mutate the returned slice.
func (p *Population) Services() []string { return p.services }

// NumShards returns how many shards cover the population.
func (p *Population) NumShards() int {
	return (p.cfg.Size + p.cfg.ShardSize - 1) / p.cfg.ShardSize
}

// ShardBounds returns the index range [start, end) of shard i.
func (p *Population) ShardBounds(i int) (start, end int) {
	start = i * p.cfg.ShardSize
	end = start + p.cfg.ShardSize
	if end > p.cfg.Size {
		end = p.cfg.Size
	}
	return start, end
}

// Shard materializes shard i. Shards are independent: any subset may
// be generated, in any order, from any number of goroutines.
func (p *Population) Shard(i int) *Shard {
	if i < 0 || i >= p.NumShards() {
		panic(fmt.Sprintf("population: shard %d out of range [0, %d)", i, p.NumShards()))
	}
	start, end := p.ShardBounds(i)
	sh := &Shard{
		Index:       i,
		Start:       start,
		End:         end,
		Subscribers: make([]Subscriber, 0, end-start),
		Leaks:       socialdb.New(),
	}
	for idx := start; idx < end; idx++ {
		sub := p.subscriber(idx)
		if sub.Leaked {
			sh.Leaks.Add(sub.Record)
		}
		sh.Subscribers = append(sh.Subscribers, sub)
	}
	return sh
}

// subscriber materializes one member, a pure function of (seed, idx).
func (p *Population) subscriber(idx int) Subscriber {
	sub := Subscriber{
		Index:   idx,
		IMSI:    IMSIFor(idx),
		Persona: p.gen.Persona(idx),
	}
	sub.Enrolled = p.enrollment(idx)
	seed := uint64(p.cfg.Seed)
	if unit(mix(seed, tagLeak, uint64(idx))) < p.cfg.LeakFraction {
		sub.Leaked = true
		sub.Record = p.leakRecord(idx, sub.Persona)
	}
	return sub
}

// IMSIFor maps a subscriber index to its 15-digit IMSI (MCC/MNC 46000,
// the PLMN the paper's field setup observed).
func IMSIFor(idx int) string {
	return fmt.Sprintf("46000%010d", idx)
}

// enrollment draws the subscriber's service set: one independent,
// index-keyed draw per service, so the profile is order-independent
// and shards need no coordination.
func (p *Population) enrollment(idx int) ServiceSet {
	set := make(ServiceSet, (len(p.adoption)+63)/64)
	seed := uint64(p.cfg.Seed)
	for j, rate := range p.adoption {
		if unit(mix(seed, tagEnroll, uint64(idx), uint64(j))) < rate {
			set[j>>6] |= 1 << (uint(j) & 63)
		}
	}
	return set
}

// leakRecord builds the attacker-visible dump entry. Two tiers mirror
// §V.A.1's sources: full breach rows (name and address, sometimes the
// citizen ID) and phishing-WiFi harvests (phone number only).
func (p *Population) leakRecord(idx int, persona identity.Persona) socialdb.Record {
	seed := uint64(p.cfg.Seed)
	rec := socialdb.Record{Phone: persona.Phone}
	if unit(mix(seed, tagLeakTier, uint64(idx))) < 0.75 {
		rec.Source = "2016-breach"
		rec.RealName = persona.RealName
		rec.Address = persona.Address
		if unit(mix(seed, tagLeakDeep, uint64(idx))) < 0.40 {
			rec.CitizenID = persona.CitizenID
		}
	} else {
		rec.Source = "phishing-wifi"
	}
	return rec
}

// domainAdoption is the base probability that a subscriber holds an
// account on the leading service of a domain; within a domain the
// rate decays geometrically with catalog rank (everyone has the top
// messenger, few have the fifth). The values are chosen so the mean
// enrollment lands near the paper's per-user account footprint
// (roughly a dozen services) on the calibrated 201-service catalog.
var domainAdoption = map[ecosys.Domain]float64{
	ecosys.DomainFintech:   0.52,
	ecosys.DomainEmail:     0.78,
	ecosys.DomainSocial:    0.64,
	ecosys.DomainECommerce: 0.46,
	ecosys.DomainTravel:    0.18,
	ecosys.DomainCloud:     0.30,
	ecosys.DomainNews:      0.12,
	ecosys.DomainEducation: 0.08,
	ecosys.DomainGaming:    0.16,
	ecosys.DomainHealth:    0.06,
	ecosys.DomainStreaming: 0.26,
	ecosys.DomainLifestyle: 0.22,
}

// adoptionRank is the per-rank decay within a domain.
const adoptionRank = 0.72

// adoptionFloor keeps long-tail services reachable at all.
const adoptionFloor = 0.004

// adoptionRates computes per-service adoption probabilities in
// catalog order.
func adoptionRates(cat *ecosys.Catalog, scale float64) []float64 {
	rank := make(map[ecosys.Domain]int)
	out := make([]float64, 0, cat.Len())
	for _, svc := range cat.Services() {
		base, ok := domainAdoption[svc.Domain]
		if !ok {
			base = 0.10
		}
		r := rank[svc.Domain]
		rank[svc.Domain]++
		rate := base * math.Pow(adoptionRank, float64(r))
		if rate < adoptionFloor {
			rate = adoptionFloor
		}
		rate *= scale
		if rate > 1 {
			rate = 1
		}
		out = append(out, rate)
	}
	return out
}

// AdoptionRates returns a copy of the per-service adoption
// probabilities, catalog order.
func (p *Population) AdoptionRates() []float64 {
	return append([]float64(nil), p.adoption...)
}

// FingerprintVersion identifies the generation of the persona draw
// streams folded into Fingerprint. Same seed + same version ⇒ same
// fingerprint across runs and machines; the version bumps whenever
// the draw pipeline changes the materialized bytes.
//
//	v1: per-persona math/rand sources.
//	v2: identity moved to single-word splitmix streams (seeding a
//	    rand.Source cost a 607-word table init per subscriber, ~14% of
//	    campaign CPU at 1M subscribers).
const FingerprintVersion = 2

// Fingerprint hashes every subscriber's complete materialized state
// (identity, persona, enrollment, leak record) into one FNV-64 digest,
// prefixed with FingerprintVersion. Two populations with equal
// fingerprints are byte-identical; the determinism property test pins
// same-seed reproducibility with it.
func (p *Population) Fingerprint() uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte{FingerprintVersion})
	buf := make([]byte, 0, 512)
	for i := 0; i < p.NumShards(); i++ {
		sh := p.Shard(i)
		for _, sub := range sh.Subscribers {
			buf = appendSubscriber(buf[:0], sub)
			_, _ = h.Write(buf)
		}
	}
	return h.Sum64()
}

// appendSubscriber canonically serializes one subscriber.
func appendSubscriber(buf []byte, sub Subscriber) []byte {
	appendStr := func(s string) {
		buf = append(buf, byte(len(s)>>8), byte(len(s)))
		buf = append(buf, s...)
	}
	buf = append(buf,
		byte(sub.Index>>24), byte(sub.Index>>16), byte(sub.Index>>8), byte(sub.Index))
	appendStr(sub.IMSI)
	pe := sub.Persona
	appendStr(pe.RealName)
	appendStr(pe.CitizenID)
	appendStr(pe.Phone)
	appendStr(pe.Email)
	appendStr(pe.Address)
	appendStr(pe.Bankcard)
	appendStr(pe.UserID)
	appendStr(pe.StudentID)
	appendStr(pe.DeviceType)
	for _, a := range pe.Acquaintances {
		appendStr(a)
	}
	for _, ph := range pe.Photos {
		appendStr(ph)
	}
	for _, w := range sub.Enrolled {
		for s := 56; s >= 0; s -= 8 {
			buf = append(buf, byte(w>>uint(s)))
		}
	}
	if sub.Leaked {
		buf = append(buf, 1)
		appendStr(sub.Record.Phone)
		appendStr(sub.Record.RealName)
		appendStr(sub.Record.Address)
		appendStr(sub.Record.CitizenID)
		appendStr(sub.Record.Source)
	} else {
		buf = append(buf, 0)
	}
	return buf
}
