package population

import (
	"reflect"
	"sync"
	"testing"

	"github.com/actfort/actfort/internal/dataset"
	"github.com/actfort/actfort/internal/identity"
	"github.com/actfort/actfort/internal/slab"
	"github.com/actfort/actfort/internal/socialdb"
)

func testPop(t *testing.T, cfg Config) *Population {
	t.Helper()
	if cfg.Catalog == nil {
		cfg.Catalog = dataset.MustDefault()
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDeterministicPopulation is the property test pinning the
// generator: the same seed must reproduce the population byte for
// byte, across independent Population values and across shard
// generation order.
func TestDeterministicPopulation(t *testing.T) {
	cfg := Config{Seed: 11, Size: 3000, ShardSize: 256}
	a := testPop(t, cfg)
	b := testPop(t, cfg)
	if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
		t.Fatalf("same seed, different fingerprints: %#x vs %#x", fa, fb)
	}
	if f := testPop(t, Config{Seed: 12, Size: 3000, ShardSize: 256}).Fingerprint(); f == a.Fingerprint() {
		t.Fatalf("different seed produced identical fingerprint %#x", f)
	}

	// Shard materialization must be order- and concurrency-independent.
	var wg sync.WaitGroup
	shards := make([]*Shard, a.NumShards())
	for i := a.NumShards() - 1; i >= 0; i-- {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			shards[i] = a.Shard(i)
		}(i)
	}
	wg.Wait()
	for i, sh := range shards {
		want := b.Shard(i)
		if !reflect.DeepEqual(sh.Subscribers, want.Subscribers) {
			t.Fatalf("shard %d differs between generations", i)
		}
	}
}

func TestShardBounds(t *testing.T) {
	p := testPop(t, Config{Seed: 1, Size: 1000, ShardSize: 300})
	if got := p.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d want 4", got)
	}
	next := 0
	for i := 0; i < p.NumShards(); i++ {
		sh := p.Shard(i)
		if sh.Start != next {
			t.Fatalf("shard %d starts at %d want %d", i, sh.Start, next)
		}
		if len(sh.Subscribers) != sh.End-sh.Start {
			t.Fatalf("shard %d has %d subscribers for range [%d,%d)", i, len(sh.Subscribers), sh.Start, sh.End)
		}
		for j, sub := range sh.Subscribers {
			if sub.Index != sh.Start+j {
				t.Fatalf("subscriber index %d at shard offset %d (start %d)", sub.Index, j, sh.Start)
			}
		}
		next = sh.End
	}
	if next != p.Size() {
		t.Fatalf("shards cover %d of %d subscribers", next, p.Size())
	}
}

func TestSubscriberValidity(t *testing.T) {
	p := testPop(t, Config{Seed: 3, Size: 600, ShardSize: 600, MaterializedPersonas: true})
	sh := p.Shard(0)
	phones := make(map[string]bool, len(sh.Subscribers))
	numServices := p.Catalog().Len()
	for _, sub := range sh.Subscribers {
		if !identity.ValidCitizenID(sub.Persona.CitizenID) {
			t.Fatalf("subscriber %d: invalid citizen ID %q", sub.Index, sub.Persona.CitizenID)
		}
		if !identity.ValidLuhn(sub.Persona.Bankcard) {
			t.Fatalf("subscriber %d: invalid bankcard %q", sub.Index, sub.Persona.Bankcard)
		}
		if len(sub.IMSI) != 15 {
			t.Fatalf("subscriber %d: IMSI %q not 15 digits", sub.Index, sub.IMSI)
		}
		if phones[sub.Persona.Phone] {
			t.Fatalf("duplicate phone %s", sub.Persona.Phone)
		}
		phones[sub.Persona.Phone] = true
		for j := numServices; j < len(sub.Enrolled)*64; j++ {
			if sub.Enrolled.Has(j) {
				t.Fatalf("subscriber %d enrolled in out-of-range service %d", sub.Index, j)
			}
		}
		if sub.Leaked {
			if sub.Record.Phone != sub.Persona.Phone {
				t.Fatalf("leak record phone %q != persona phone %q", sub.Record.Phone, sub.Persona.Phone)
			}
			if sub.Record.Source == "" {
				t.Fatalf("leaked subscriber %d has no source", sub.Index)
			}
			if r, err := sh.Leaks.Lookup(sub.Persona.Phone); err != nil || r != *sub.Record {
				t.Fatalf("shard leak DB lookup = %+v, %v", r, err)
			}
		} else if _, err := sh.Leaks.Lookup(sub.Persona.Phone); err == nil {
			t.Fatalf("unleaked subscriber %d present in leak DB", sub.Index)
		}
	}
}

func TestLeakFractionAndEnrollment(t *testing.T) {
	p := testPop(t, Config{Seed: 5, Size: 20000, ShardSize: 5000})
	leaked, enrolled := 0, 0
	for i := 0; i < p.NumShards(); i++ {
		for _, sub := range p.Shard(i).Subscribers {
			if sub.Leaked {
				leaked++
			}
			enrolled += sub.Enrolled.Count()
		}
	}
	frac := float64(leaked) / float64(p.Size())
	if frac < 0.32 || frac > 0.38 {
		t.Errorf("leak fraction = %.3f want ~%.2f", frac, DefaultLeakFraction)
	}
	mean := float64(enrolled) / float64(p.Size())
	if mean < 6 || mean > 25 {
		t.Errorf("mean enrollment = %.1f services, outside the calibrated band", mean)
	}
}

func TestLeakFractionDisabled(t *testing.T) {
	p := testPop(t, Config{Seed: 5, Size: 500, ShardSize: 500, LeakFraction: -1})
	if n := p.Shard(0).LeakCount; n != 0 {
		t.Fatalf("negative LeakFraction leaked %d subscribers", n)
	}
	pm := testPop(t, Config{Seed: 5, Size: 500, ShardSize: 500, LeakFraction: -1, MaterializedPersonas: true})
	if n := pm.Shard(0).Leaks.Len(); n != 0 {
		t.Fatalf("negative LeakFraction leaked %d records (materialized)", n)
	}
}

// TestLazyMatchesMaterialized pins the compact representation against
// the eager one: every derivable attribute, the leak classification
// and the reconstructed leak records must agree byte for byte, and
// shard recycling (Release + regenerate) must not perturb any of it.
func TestLazyMatchesMaterialized(t *testing.T) {
	cfg := Config{Seed: 9, Size: 1200, ShardSize: 500}
	lazy := testPop(t, cfg)
	cfg.MaterializedPersonas = true
	eager := testPop(t, cfg)

	var arena slab.Slab[byte]
	var tmp []byte
	for i := 0; i < lazy.NumShards(); i++ {
		// Generate and immediately release once, so the compared shard
		// exercises the pooled-storage path.
		lazy.Shard(i).Release()
		ls, es := lazy.Shard(i), eager.Shard(i)
		if ls.LeakCount != es.LeakCount || ls.LeakCount != es.Leaks.Len() {
			t.Fatalf("shard %d: LeakCount lazy=%d eager=%d store=%d", i, ls.LeakCount, es.LeakCount, es.Leaks.Len())
		}
		var want []socialdb.Record
		for j := range ls.Subscribers {
			lsub, esub := &ls.Subscribers[j], &es.Subscribers[j]
			if lsub.Index != esub.Index || lsub.Leaked != esub.Leaked || lsub.Class != esub.Class {
				t.Fatalf("shard %d sub %d: flag mismatch lazy=%+v eager=%+v", i, j, lsub, esub)
			}
			if !reflect.DeepEqual(lsub.Enrolled, esub.Enrolled) {
				t.Fatalf("shard %d sub %d: enrollment mismatch", i, j)
			}
			if got := string(lsub.AppendIMSI(nil)); got != esub.IMSI {
				t.Fatalf("sub %d: IMSI %q != %q", lsub.Index, got, esub.IMSI)
			}
			if got := string(lsub.Ref.AppendPhone(nil)); got != esub.Persona.Phone {
				t.Fatalf("sub %d: phone %q != %q", lsub.Index, got, esub.Persona.Phone)
			}
			if got := lsub.Ref.Persona(); !reflect.DeepEqual(got, *esub.Persona) {
				t.Fatalf("sub %d: persona mismatch\nlazy  %+v\neager %+v", lsub.Index, got, esub.Persona)
			}
			if esub.Leaked {
				want = append(want, *esub.Record)
			}
		}
		var got []socialdb.Record
		got, tmp = lazy.AppendLeakRecords(got, ls, &arena, tmp)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shard %d: AppendLeakRecords mismatch (%d vs %d records)", i, len(got), len(want))
		}
		ls.Release()
		es.Release()
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Size: 0}); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := New(Config{Size: 10, ShardSize: -1}); err == nil {
		t.Error("negative shard size accepted")
	}
}
