// Package email is the mail substrate: mailboxes, message delivery,
// and extraction of verification codes and reset links from message
// bodies. Email accounts are themselves services in the ecosystem —
// the paper's key insight is that "Emails are the gateway to most of
// the vulnerabilities exposed": most providers reset with SMS codes
// alone, and a compromised mailbox then leaks email codes (EMC) and
// reset links for everything registered to it.
package email

import (
	"errors"
	"fmt"
	"regexp"
	"strings"
	"sync"
	"time"

	"github.com/actfort/actfort/internal/smsotp"
)

// Message is one delivered email.
type Message struct {
	From    string
	To      string
	Subject string
	Body    string
	// Seq orders messages within a mailbox (monotonic per server).
	Seq int
}

// Common errors.
var (
	ErrNoMailbox = errors.New("email: no such mailbox")
	ErrDuplicate = errors.New("email: mailbox already exists")
)

// Server is an in-memory mail provider. Safe for concurrent use.
type Server struct {
	mu        sync.Mutex
	mailboxes map[string][]Message
	nextSeq   int
}

// NewServer builds an empty server.
func NewServer() *Server {
	return &Server{mailboxes: make(map[string][]Message)}
}

// CreateMailbox provisions an address.
func (s *Server) CreateMailbox(addr string) error {
	if addr == "" || !strings.Contains(addr, "@") {
		return fmt.Errorf("email: invalid address %q", addr)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.mailboxes[addr]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, addr)
	}
	s.mailboxes[addr] = nil
	return nil
}

// Deliver appends a message to the recipient's mailbox.
func (s *Server) Deliver(m Message) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	box, ok := s.mailboxes[m.To]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoMailbox, m.To)
	}
	m.Seq = s.nextSeq
	s.nextSeq++
	s.mailboxes[m.To] = append(box, m)
	return nil
}

// Inbox returns a copy of the mailbox, oldest first.
func (s *Server) Inbox(addr string) ([]Message, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	box, ok := s.mailboxes[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoMailbox, addr)
	}
	return append([]Message(nil), box...), nil
}

// LastMatching returns the newest message satisfying pred.
func (s *Server) LastMatching(addr string, pred func(Message) bool) (Message, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	box := s.mailboxes[addr]
	for i := len(box) - 1; i >= 0; i-- {
		if pred(box[i]) {
			return box[i], true
		}
	}
	return Message{}, false
}

// Exists reports whether the mailbox is provisioned.
func (s *Server) Exists(addr string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.mailboxes[addr]
	return ok
}

// codeRe matches standalone 4–8 digit runs — OTP codes as they appear
// in real verification mails.
var codeRe = regexp.MustCompile(`\b([0-9]{4,8})\b`)

// ExtractCode pulls the first OTP-looking digit run from a body.
func ExtractCode(body string) (string, bool) {
	m := codeRe.FindStringSubmatch(body)
	if m == nil {
		return "", false
	}
	return m[1], true
}

// linkRe matches https reset links.
var linkRe = regexp.MustCompile(`https://[^\s"<>]+`)

// ExtractLink pulls the first https link from a body (reset links).
func ExtractLink(body string) (string, bool) {
	m := linkRe.FindString(body)
	if m == "" {
		return "", false
	}
	return m, true
}

// CodeSender adapts the server as an smsotp delivery transport, so
// services can offer "email code" authentication paths.
type CodeSender struct {
	Server *Server
	// From is the sender address, e.g. "no-reply@paypal.example".
	From string
	// DisplayName replaces the service name in subject and body; use
	// it when the smsotp scope string is not presentation-safe.
	DisplayName string
}

var _ smsotp.Sender = (*CodeSender)(nil)

// SendCode implements smsotp.Sender: destination is a mailbox address.
func (c *CodeSender) SendCode(destination, serviceName, code string) error {
	if c.Server == nil {
		return errors.New("email: CodeSender without server")
	}
	name := c.DisplayName
	if name == "" {
		name = serviceName
	}
	from := c.From
	if from == "" {
		from = "no-reply@" + strings.ToLower(name) + ".example"
	}
	return c.Server.Deliver(Message{
		From:    from,
		To:      destination,
		Subject: name + " verification code",
		Body: fmt.Sprintf("Your %s verification code is %s. It expires in %d minutes.",
			name, code, int((5 * time.Minute).Minutes())),
	})
}
