package email

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestMailboxLifecycle(t *testing.T) {
	s := NewServer()
	if err := s.CreateMailbox("alice@mail.example"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateMailbox("alice@mail.example"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate err = %v", err)
	}
	if err := s.CreateMailbox("not-an-address"); err == nil {
		t.Error("invalid address accepted")
	}
	if err := s.CreateMailbox(""); err == nil {
		t.Error("empty address accepted")
	}
	if !s.Exists("alice@mail.example") || s.Exists("bob@mail.example") {
		t.Error("Exists wrong")
	}
}

func TestDeliverAndInbox(t *testing.T) {
	s := NewServer()
	if err := s.CreateMailbox("a@x.example"); err != nil {
		t.Fatal(err)
	}
	if err := s.Deliver(Message{From: "p@y.example", To: "nobody@x.example", Body: "hi"}); !errors.Is(err, ErrNoMailbox) {
		t.Errorf("deliver to missing box err = %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Deliver(Message{From: "p@y.example", To: "a@x.example", Subject: "s", Body: "b"}); err != nil {
			t.Fatal(err)
		}
	}
	box, err := s.Inbox("a@x.example")
	if err != nil {
		t.Fatal(err)
	}
	if len(box) != 3 {
		t.Fatalf("inbox = %d messages", len(box))
	}
	for i := 1; i < len(box); i++ {
		if box[i].Seq <= box[i-1].Seq {
			t.Error("messages out of order")
		}
	}
	if _, err := s.Inbox("nobody@x.example"); !errors.Is(err, ErrNoMailbox) {
		t.Errorf("inbox of missing box err = %v", err)
	}
}

func TestLastMatching(t *testing.T) {
	s := NewServer()
	if err := s.CreateMailbox("a@x.example"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Deliver(Message{From: "svc@y.example", To: "a@x.example", Body: fmt.Sprintf("msg %d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	m, ok := s.LastMatching("a@x.example", func(m Message) bool { return strings.Contains(m.Body, "msg") })
	if !ok || m.Body != "msg 4" {
		t.Errorf("LastMatching = %+v, %v", m, ok)
	}
	if _, ok := s.LastMatching("a@x.example", func(Message) bool { return false }); ok {
		t.Error("predicate false matched")
	}
	if _, ok := s.LastMatching("missing@x.example", func(Message) bool { return true }); ok {
		t.Error("missing mailbox matched")
	}
}

func TestExtractCode(t *testing.T) {
	cases := []struct {
		body string
		want string
		ok   bool
	}{
		{"Your PayPal verification code is 845512. It expires soon.", "845512", true},
		{"PIN: 0042", "0042", true},
		{"Use 12345678 now", "12345678", true},
		{"order #123 shipped", "", false},      // 3 digits: not a code
		{"call +8613800000001 now", "", false}, // embedded in longer run
		{"no digits here", "", false},
	}
	for _, c := range cases {
		got, ok := ExtractCode(c.body)
		if ok != c.ok || got != c.want {
			t.Errorf("ExtractCode(%q) = %q,%v want %q,%v", c.body, got, ok, c.want, c.ok)
		}
	}
}

func TestExtractLink(t *testing.T) {
	body := `Click <a href="https://paypal.example/reset?token=abc123">here</a> to reset.`
	link, ok := ExtractLink(body)
	if !ok || !strings.HasPrefix(link, "https://paypal.example/reset?token=abc123") {
		t.Errorf("ExtractLink = %q,%v", link, ok)
	}
	if _, ok := ExtractLink("no links"); ok {
		t.Error("matched absent link")
	}
}

func TestCodeSender(t *testing.T) {
	s := NewServer()
	if err := s.CreateMailbox("victim@mail.example"); err != nil {
		t.Fatal(err)
	}
	cs := &CodeSender{Server: s}
	if err := cs.SendCode("victim@mail.example", "PayPal", "339201"); err != nil {
		t.Fatal(err)
	}
	m, ok := s.LastMatching("victim@mail.example", func(m Message) bool {
		return strings.Contains(m.Subject, "PayPal")
	})
	if !ok {
		t.Fatal("code mail not delivered")
	}
	code, ok := ExtractCode(m.Body)
	if !ok || code != "339201" {
		t.Errorf("extracted %q,%v from %q", code, ok, m.Body)
	}
	if m.From != "no-reply@paypal.example" {
		t.Errorf("From = %q", m.From)
	}
	var nilSender CodeSender
	if err := nilSender.SendCode("x@y.example", "Svc", "1"); err == nil {
		t.Error("nil server accepted")
	}
}

func TestConcurrentDelivery(t *testing.T) {
	s := NewServer()
	if err := s.CreateMailbox("a@x.example"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				if err := s.Deliver(Message{From: "f@y.example", To: "a@x.example", Body: "m"}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	box, _ := s.Inbox("a@x.example")
	if len(box) != 400 {
		t.Fatalf("inbox = %d want 400", len(box))
	}
	seen := make(map[int]bool, len(box))
	for _, m := range box {
		if seen[m.Seq] {
			t.Fatalf("duplicate seq %d", m.Seq)
		}
		seen[m.Seq] = true
	}
}
