package gsmcodec

import (
	"bytes"
	"encoding/hex"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPack7BitKnownAnswer(t *testing.T) {
	// Classic GSM example: "hellohello" packs to E8329BFD4697D9EC37.
	packed, septets, err := Pack7Bit("hellohello")
	if err != nil {
		t.Fatal(err)
	}
	if septets != 10 {
		t.Fatalf("septets = %d want 10", septets)
	}
	if got := strings.ToUpper(hex.EncodeToString(packed)); got != "E8329BFD4697D9EC37" {
		t.Fatalf("packed = %s want E8329BFD4697D9EC37", got)
	}
}

func TestUnpack7BitKnownAnswer(t *testing.T) {
	raw, _ := hex.DecodeString("E8329BFD4697D9EC37")
	got, err := Unpack7Bit(raw, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != "hellohello" {
		t.Fatalf("unpacked = %q", got)
	}
}

func TestPackUnpackRoundTripASCII(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		length := int(n) % 161
		runes := make([]rune, length)
		for i := range runes {
			// Printable ASCII subset fully inside the GSM alphabet.
			choices := "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 .:-+()/?!,"
			runes[i] = rune(choices[r.Intn(len(choices))])
		}
		text := string(runes)
		packed, septets, err := Pack7Bit(text)
		if err != nil {
			return false
		}
		got, err := Unpack7Bit(packed, septets)
		return err == nil && got == text
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPack7BitRejectsLongAndUnmappable(t *testing.T) {
	if _, _, err := Pack7Bit(strings.Repeat("a", 161)); !errors.Is(err, ErrMessageTooLong) {
		t.Errorf("long message err = %v", err)
	}
	if _, _, err := Pack7Bit("code 中 123"); !errors.Is(err, ErrUnmappableRune) {
		t.Errorf("CJK err = %v", err)
	}
	if Mappable("中") {
		t.Error("CJK rune reported mappable")
	}
	if !Mappable("Your code is 1234 @ großes ä") {
		t.Error("GSM-alphabet text reported unmappable")
	}
}

func TestUnpack7BitErrors(t *testing.T) {
	if _, err := Unpack7Bit([]byte{0x01}, 5); err == nil {
		t.Error("short data accepted")
	}
	if _, err := Unpack7Bit(nil, -1); err == nil {
		t.Error("negative septets accepted")
	}
	if _, err := Unpack7Bit(make([]byte, 200), 200); err == nil {
		t.Error("septets > 160 accepted")
	}
}

func TestSemiOctetsRoundTrip(t *testing.T) {
	cases := []string{"", "1", "12", "8613800001111", "123456789012345"}
	for _, digits := range cases {
		enc, err := EncodeSemiOctets(digits)
		if err != nil {
			t.Fatalf("encode %q: %v", digits, err)
		}
		dec, err := DecodeSemiOctets(enc, len(digits))
		if err != nil {
			t.Fatalf("decode %q: %v", digits, err)
		}
		if dec != digits {
			t.Errorf("round trip %q -> %q", digits, dec)
		}
	}
}

func TestSemiOctetsKnownAnswer(t *testing.T) {
	enc, err := EncodeSemiOctets("12345")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, []byte{0x21, 0x43, 0xF5}) {
		t.Fatalf("EncodeSemiOctets(12345) = %x want 2143f5", enc)
	}
}

func TestSemiOctetsErrors(t *testing.T) {
	if _, err := EncodeSemiOctets("12a4"); !errors.Is(err, ErrBadDigits) {
		t.Errorf("bad digit err = %v", err)
	}
	if _, err := DecodeSemiOctets([]byte{0x21}, 5); err == nil {
		t.Error("short decode accepted")
	}
	if _, err := DecodeSemiOctets([]byte{0xAB}, 2); err == nil {
		t.Error("invalid BCD nibble accepted")
	}
}

func TestDeliverRoundTripInternational(t *testing.T) {
	d := Deliver{
		Originator: "+8613800001111",
		Timestamp:  time.Date(2021, 4, 19, 8, 30, 15, 0, time.UTC),
		Text:       "Your Google verification code is 845512",
	}
	raw, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalDeliver(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Originator != d.Originator {
		t.Errorf("originator %q want %q", got.Originator, d.Originator)
	}
	if !got.Timestamp.Equal(d.Timestamp) {
		t.Errorf("timestamp %v want %v", got.Timestamp, d.Timestamp)
	}
	if got.Text != d.Text {
		t.Errorf("text %q want %q", got.Text, d.Text)
	}
}

func TestDeliverRoundTripAlphanumeric(t *testing.T) {
	d := Deliver{
		Originator: "Google",
		Timestamp:  time.Date(2021, 7, 19, 23, 59, 59, 0, time.UTC),
		Text:       "G-942117 is your verification code.",
	}
	raw, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalDeliver(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Originator != "Google" {
		t.Errorf("originator %q want Google", got.Originator)
	}
	if got.Text != d.Text {
		t.Errorf("text %q want %q", got.Text, d.Text)
	}
}

func TestDeliverRoundTripProperty(t *testing.T) {
	f := func(seed int64, codeVal uint32) bool {
		r := rand.New(rand.NewSource(seed))
		code := int(codeVal % 1000000)
		d := Deliver{
			Originator: "+86138" + strings.Repeat("0", 2) + "123456"[:6],
			Timestamp:  time.Date(2000+r.Intn(99), time.Month(1+r.Intn(12)), 1+r.Intn(28), r.Intn(24), r.Intn(60), r.Intn(60), 0, time.UTC),
			Text:       "Code: " + formatCode(code),
		}
		raw, err := d.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalDeliver(raw)
		return err == nil && got.Text == d.Text && got.Originator == d.Originator && got.Timestamp.Equal(d.Timestamp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func formatCode(c int) string {
	const digits = "0123456789"
	out := make([]byte, 6)
	for i := 5; i >= 0; i-- {
		out[i] = digits[c%10]
		c /= 10
	}
	return string(out)
}

func TestUnmarshalDeliverErrors(t *testing.T) {
	if _, err := UnmarshalDeliver(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("nil err = %v", err)
	}
	if _, err := UnmarshalDeliver([]byte{0x01}); !errors.Is(err, ErrNotDeliver) {
		t.Errorf("MTI err = %v", err)
	}
	d := Deliver{Originator: "+86138", Timestamp: time.Now(), Text: "hi"}
	raw, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(raw)-1; cut++ {
		if _, err := UnmarshalDeliver(raw[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestMarshalRejectsBadOriginator(t *testing.T) {
	d := Deliver{Originator: "+86ABC", Timestamp: time.Now(), Text: "x"}
	if _, err := d.Marshal(); err == nil {
		t.Error("non-digit international originator accepted")
	}
	d = Deliver{Originator: "AVeryLongSenderName", Timestamp: time.Now(), Text: "x"}
	if _, err := d.Marshal(); err == nil {
		t.Error("overlong alphanumeric originator accepted")
	}
}

func BenchmarkPack7Bit(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, _ = Pack7Bit("Your verification code is 845512. Do not share it.")
	}
}

func BenchmarkDeliverMarshal(b *testing.B) {
	d := Deliver{
		Originator: "+8613800001111",
		Timestamp:  time.Date(2021, 4, 19, 8, 30, 15, 0, time.UTC),
		Text:       "Your verification code is 845512",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := d.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}
