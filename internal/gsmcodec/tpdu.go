package gsmcodec

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Semi-octet (swapped BCD) encoding, used for addresses and service
// centre timestamps (GSM 03.40 §9.1.2.3).

// ErrBadDigits reports a non-decimal character in an address.
var ErrBadDigits = errors.New("gsmcodec: address contains non-decimal digit")

// EncodeSemiOctets packs decimal digits two per byte with nibbles
// swapped; an odd trailing digit is padded with 0xF.
func EncodeSemiOctets(digits string) ([]byte, error) {
	out := make([]byte, 0, (len(digits)+1)/2)
	for i := 0; i < len(digits); i += 2 {
		lo := digits[i]
		if lo < '0' || lo > '9' {
			return nil, fmt.Errorf("%w: %q", ErrBadDigits, lo)
		}
		b := lo - '0'
		if i+1 < len(digits) {
			hi := digits[i+1]
			if hi < '0' || hi > '9' {
				return nil, fmt.Errorf("%w: %q", ErrBadDigits, hi)
			}
			b |= (hi - '0') << 4
		} else {
			b |= 0xF0
		}
		out = append(out, b)
	}
	return out, nil
}

// DecodeSemiOctets unpacks n digits from swapped-BCD bytes.
func DecodeSemiOctets(b []byte, n int) (string, error) {
	if n < 0 || len(b)*2 < n {
		return "", fmt.Errorf("gsmcodec: semi-octet data too short for %d digits", n)
	}
	var sb strings.Builder
	sb.Grow(n)
	for i := 0; i < n; i++ {
		nib := b[i/2]
		if i%2 == 1 {
			nib >>= 4
		}
		nib &= 0x0F
		if nib > 9 {
			return "", fmt.Errorf("gsmcodec: invalid BCD nibble %#x", nib)
		}
		sb.WriteByte('0' + nib)
	}
	return sb.String(), nil
}

// Type-of-address values.
const (
	// TOAInternational marks an international number (leading + was
	// stripped).
	TOAInternational = 0x91
	// TOAAlphanumeric marks a sender name like "Google" packed 7-bit.
	TOAAlphanumeric = 0xD0
)

// Deliver is an SMS-DELIVER TPDU: a mobile-terminated short message as
// the BTS broadcasts it to the victim's terminal.
type Deliver struct {
	// Originator is the sender: either an international number
	// ("+8613800001111") or an alphanumeric ID ("Google").
	Originator string
	// Timestamp is the service-centre timestamp, second precision.
	Timestamp time.Time
	// Text is the message body (GSM default alphabet).
	Text string
}

// firstOctet is SMS-DELIVER with no more messages waiting.
const firstOctetDeliver = 0x04

// ErrNotDeliver reports a TPDU whose message type is not SMS-DELIVER.
var ErrNotDeliver = errors.New("gsmcodec: not an SMS-DELIVER TPDU")

// ErrTruncated reports a TPDU shorter than its headers claim.
var ErrTruncated = errors.New("gsmcodec: truncated TPDU")

// Marshal encodes the TPDU per GSM 03.40.
func (d Deliver) Marshal() ([]byte, error) {
	var out []byte
	out = append(out, firstOctetDeliver)

	if strings.HasPrefix(d.Originator, "+") {
		digits := d.Originator[1:]
		addr, err := EncodeSemiOctets(digits)
		if err != nil {
			return nil, fmt.Errorf("originator: %w", err)
		}
		out = append(out, byte(len(digits)), TOAInternational)
		out = append(out, addr...)
	} else {
		packed, septets, err := Pack7Bit(d.Originator)
		if err != nil {
			return nil, fmt.Errorf("originator: %w", err)
		}
		if len(packed) > 10 { // address field is at most 10 octets
			return nil, fmt.Errorf("gsmcodec: alphanumeric originator %q too long", d.Originator)
		}
		_ = septets
		// Address-length for alphanumeric is the number of useful
		// semi-octets = packed bytes * 2.
		out = append(out, byte(len(packed)*2), TOAAlphanumeric)
		out = append(out, packed...)
	}

	out = append(out, 0x00 /* PID */, 0x00 /* DCS: 7-bit default */)

	ts, err := encodeSCTS(d.Timestamp)
	if err != nil {
		return nil, err
	}
	out = append(out, ts...)

	packed, septets, err := Pack7Bit(d.Text)
	if err != nil {
		return nil, fmt.Errorf("text: %w", err)
	}
	out = append(out, byte(septets))
	out = append(out, packed...)
	return out, nil
}

// UnmarshalDeliver parses an SMS-DELIVER TPDU.
func UnmarshalDeliver(b []byte) (Deliver, error) {
	var d Deliver
	if len(b) < 1 {
		return d, ErrTruncated
	}
	if b[0]&0x03 != 0x00 { // MTI 00 = SMS-DELIVER (MS-terminated)
		return d, ErrNotDeliver
	}
	p := 1
	if len(b) < p+2 {
		return d, ErrTruncated
	}
	addrLen := int(b[p])
	toa := b[p+1]
	p += 2
	switch toa {
	case TOAInternational:
		nbytes := (addrLen + 1) / 2
		if len(b) < p+nbytes {
			return d, ErrTruncated
		}
		digits, err := DecodeSemiOctets(b[p:p+nbytes], addrLen)
		if err != nil {
			return d, err
		}
		d.Originator = "+" + digits
		p += nbytes
	case TOAAlphanumeric:
		nbytes := (addrLen + 1) / 2
		if len(b) < p+nbytes {
			return d, ErrTruncated
		}
		septets := nbytes * 8 / 7
		name, err := Unpack7Bit(b[p:p+nbytes], septets)
		if err != nil {
			return d, err
		}
		d.Originator = strings.TrimRight(name, "\x00@")
		p += nbytes
	default:
		return d, fmt.Errorf("gsmcodec: unsupported type-of-address %#x", toa)
	}

	if len(b) < p+2+7+1 {
		return d, ErrTruncated
	}
	dcs := b[p+1]
	if dcs != 0x00 {
		return d, fmt.Errorf("gsmcodec: unsupported DCS %#x", dcs)
	}
	p += 2
	ts, err := decodeSCTS(b[p : p+7])
	if err != nil {
		return d, err
	}
	d.Timestamp = ts
	p += 7

	septets := int(b[p])
	p++
	text, err := Unpack7Bit(b[p:], septets)
	if err != nil {
		return d, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	d.Text = text
	return d, nil
}

// encodeSCTS packs a timestamp as seven swapped-BCD octets
// (yy MM dd hh mm ss zz); the zone octet is written as UTC.
func encodeSCTS(t time.Time) ([]byte, error) {
	t = t.UTC()
	fields := []int{t.Year() % 100, int(t.Month()), t.Day(), t.Hour(), t.Minute(), t.Second(), 0}
	out := make([]byte, 0, 7)
	for _, f := range fields {
		enc, err := EncodeSemiOctets(fmt.Sprintf("%02d", f))
		if err != nil {
			return nil, err
		}
		out = append(out, enc...)
	}
	return out, nil
}

func decodeSCTS(b []byte) (time.Time, error) {
	if len(b) != 7 {
		return time.Time{}, ErrTruncated
	}
	vals := make([]int, 7)
	for i, oct := range b {
		s, err := DecodeSemiOctets([]byte{oct}, 2)
		if err != nil {
			return time.Time{}, err
		}
		vals[i] = int(s[0]-'0')*10 + int(s[1]-'0')
	}
	return time.Date(2000+vals[0], time.Month(vals[1]), vals[2], vals[3], vals[4], vals[5], 0, time.UTC), nil
}
