// Package gsmcodec implements the GSM 03.38/03.40 encodings the
// simulated air interface carries: the 7-bit default alphabet with
// septet packing, semi-octet (swapped BCD) addresses and timestamps,
// and SMS-DELIVER TPDU marshaling. The sniffer decodes exactly these
// structures after stripping A5/1, mirroring what OsmocomBB+Wireshark
// do in the paper's Fig 5 capture.
package gsmcodec

import (
	"errors"
	"fmt"
)

// MaxSeptets is the single-SMS capacity of the 7-bit alphabet.
const MaxSeptets = 160

// ErrMessageTooLong reports text beyond single-SMS capacity;
// concatenated SMS is out of scope for OTP-sized payloads.
var ErrMessageTooLong = errors.New("gsmcodec: message exceeds 160 septets")

// ErrUnmappableRune reports a character outside the GSM default
// alphabet.
var ErrUnmappableRune = errors.New("gsmcodec: rune not in GSM 03.38 default alphabet")

// gsmToRune is the GSM 03.38 default alphabet (basic table, no
// extension escapes).
var gsmToRune = [128]rune{
	'@', '£', '$', '¥', 'è', 'é', 'ù', 'ì', 'ò', 'Ç', '\n', 'Ø', 'ø', '\r', 'Å', 'å',
	'Δ', '_', 'Φ', 'Γ', 'Λ', 'Ω', 'Π', 'Ψ', 'Σ', 'Θ', 'Ξ', '\x1b', 'Æ', 'æ', 'ß', 'É',
	' ', '!', '"', '#', '¤', '%', '&', '\'', '(', ')', '*', '+', ',', '-', '.', '/',
	'0', '1', '2', '3', '4', '5', '6', '7', '8', '9', ':', ';', '<', '=', '>', '?',
	'¡', 'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K', 'L', 'M', 'N', 'O',
	'P', 'Q', 'R', 'S', 'T', 'U', 'V', 'W', 'X', 'Y', 'Z', 'Ä', 'Ö', 'Ñ', 'Ü', '§',
	'¿', 'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o',
	'p', 'q', 'r', 's', 't', 'u', 'v', 'w', 'x', 'y', 'z', 'ä', 'ö', 'ñ', 'ü', 'à',
}

var runeToGSM = func() map[rune]byte {
	m := make(map[rune]byte, 128)
	for i, r := range gsmToRune {
		m[r] = byte(i)
	}
	return m
}()

// Septets converts text to GSM alphabet code points.
func Septets(text string) ([]byte, error) {
	out := make([]byte, 0, len(text))
	for _, r := range text {
		code, ok := runeToGSM[r]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnmappableRune, r)
		}
		out = append(out, code)
	}
	if len(out) > MaxSeptets {
		return nil, ErrMessageTooLong
	}
	return out, nil
}

// Pack7Bit encodes text into packed septets, returning the packed
// bytes and the septet count needed to unpack (the TPDU UDL field).
func Pack7Bit(text string) (packed []byte, septets int, err error) {
	seps, err := Septets(text)
	if err != nil {
		return nil, 0, err
	}
	packed = make([]byte, 0, (len(seps)*7+7)/8)
	var buf uint32
	nbits := 0
	for _, sp := range seps {
		buf |= uint32(sp) << uint(nbits)
		nbits += 7
		for nbits >= 8 {
			packed = append(packed, byte(buf))
			buf >>= 8
			nbits -= 8
		}
	}
	if nbits > 0 {
		packed = append(packed, byte(buf))
	}
	return packed, len(seps), nil
}

// Unpack7Bit decodes septets packed bytes back to text.
func Unpack7Bit(packed []byte, septets int) (string, error) {
	if septets < 0 || septets > MaxSeptets {
		return "", fmt.Errorf("gsmcodec: invalid septet count %d", septets)
	}
	need := (septets*7 + 7) / 8
	if len(packed) < need {
		return "", fmt.Errorf("gsmcodec: packed data too short: have %d bytes, need %d", len(packed), need)
	}
	out := make([]rune, 0, septets)
	var buf uint32
	nbits := 0
	idx := 0
	for i := 0; i < septets; i++ {
		for nbits < 7 {
			buf |= uint32(packed[idx]) << uint(nbits)
			idx++
			nbits += 8
		}
		out = append(out, gsmToRune[buf&0x7F])
		buf >>= 7
		nbits -= 7
	}
	return string(out), nil
}

// Mappable reports whether every rune of text is representable in the
// default alphabet.
func Mappable(text string) bool {
	for _, r := range text {
		if _, ok := runeToGSM[r]; !ok {
			return false
		}
	}
	return true
}
