// Command fortify applies the §VII.A countermeasures — unified
// sensitive-data masking, hardened email providers, and built-in
// (push-based) authentication — and re-runs the ActFort measurement to
// show the before/after collapse of the attack surface (experiment
// E13).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/actfort/actfort/internal/countermeasure"
	"github.com/actfort/actfort/internal/dataset"
	"github.com/actfort/actfort/internal/report"
	"github.com/actfort/actfort/internal/strategy"
)

func main() {
	flag.Parse()
	cat, err := dataset.Default()
	if err != nil {
		fatal(err)
	}
	out, err := countermeasure.Evaluate(cat)
	if err != nil {
		fatal(err)
	}

	t := &report.Table{
		Title:   "E13 — ecosystem before/after the full §VII.A program",
		Headers: []string{"metric", "before", "after"},
	}
	row := func(name string, before, after strategy.DepthStats, get func(strategy.DepthStats) int) {
		t.AddRow(name,
			fmt.Sprintf("%d (%s)", get(before), report.Pct(before.Pct(get(before)))),
			fmt.Sprintf("%d (%s)", get(after), report.Pct(after.Pct(get(after)))))
	}
	row("web direct", out.WebBefore, out.WebAfter, func(s strategy.DepthStats) int { return s.Direct })
	row("web one-middle", out.WebBefore, out.WebAfter, func(s strategy.DepthStats) int { return s.OneMiddle })
	row("web uncompromisable", out.WebBefore, out.WebAfter, func(s strategy.DepthStats) int { return s.Uncompromisable })
	row("mobile direct", out.MobileBefore, out.MobileAfter, func(s strategy.DepthStats) int { return s.Direct })
	row("mobile uncompromisable", out.MobileBefore, out.MobileAfter, func(s strategy.DepthStats) int { return s.Uncompromisable })
	fmt.Println(t)
	fmt.Printf("forward-closure victims: %d/%d before -> %d/%d after\n",
		out.VictimsBefore, out.Total, out.VictimsAfter, out.Total)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fortify:", err)
	os.Exit(1)
}
