// Command chainattack executes the paper's §V.B case studies end to
// end against live HTTP services: plan generation with ActFort, SMS
// interception off the simulated GSM air interface, account takeover,
// information harvesting and the final payment.
//
// Usage:
//
//	chainattack -case 1   # Baidu-Wallet-style direct takeover
//	chainattack -case 2   # PayPal via Gmail
//	chainattack -case 3   # Alipay via Ctrip (+ payment code reset)
//	chainattack -case 0   # all three
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/actfort/actfort/internal/attack"
)

func main() {
	var (
		caseNum = flag.Int("case", 0, "case study to run (1-3; 0 = all)")
		seed    = flag.Int64("seed", 42, "victim/world seed")
		keyBits = flag.Int("keybits", 12, "A5/1 session-key space bits")
	)
	flag.Parse()

	cases := []int{1, 2, 3}
	if *caseNum != 0 {
		cases = []int{*caseNum}
	}
	for _, n := range cases {
		if err := run(n, *seed, *keyBits); err != nil {
			fmt.Fprintln(os.Stderr, "chainattack:", err)
			os.Exit(1)
		}
	}
}

func run(n int, seed int64, keyBits int) error {
	s, err := attack.NewScenario(attack.ScenarioConfig{Seed: seed, KeyBits: keyBits})
	if err != nil {
		return err
	}
	defer s.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	start := time.Now()
	rep, err := s.RunCase(ctx, n)
	if err != nil {
		return fmt.Errorf("case %d: %w", n, err)
	}
	fmt.Printf("=== %s ===\n", rep.Name)
	fmt.Println("attack path:", rep.Plan)
	for _, line := range rep.Lines {
		fmt.Println(" ", line)
	}
	fmt.Printf("completed in %v; sniffer stats: %+v\n\n", time.Since(start).Round(time.Millisecond), s.Sniffer.Stats())
	return nil
}
