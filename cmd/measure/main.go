// Command measure regenerates the paper's measurement artifacts from
// the calibrated ecosystem: Fig 3 (credential-factor usage), Table I
// (post-login exposure), the §IV.B.1 dependency-depth percentages, the
// Fig 4 connection graph, and the per-domain breakdown.
//
// Usage:
//
//	measure [-fig3] [-table1] [-layers] [-fig4 out.dot] [-domains] [-all]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/actfort/actfort/internal/authproc"
	"github.com/actfort/actfort/internal/collect"
	"github.com/actfort/actfort/internal/core"
	"github.com/actfort/actfort/internal/dataset"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/report"
	"github.com/actfort/actfort/internal/strategy"
)

func main() {
	var (
		fig3    = flag.Bool("fig3", false, "print the Fig 3 authentication measurement")
		table1  = flag.Bool("table1", false, "print Table I")
		layers  = flag.Bool("layers", false, "print the dependency-depth percentages")
		fig4    = flag.String("fig4", "", "write the 44-account connection graph as DOT to this file ('-' for stdout)")
		domains = flag.Bool("domains", false, "print the per-domain breakdown")
		all     = flag.Bool("all", false, "print everything")
	)
	flag.Parse()
	if !*fig3 && !*table1 && !*layers && *fig4 == "" && !*domains {
		*all = true
	}

	cat, err := dataset.Default()
	if err != nil {
		fatal(err)
	}
	engine, err := core.New(cat, ecosys.BaselineAttacker())
	if err != nil {
		fatal(err)
	}

	if *all || *fig3 {
		web := authproc.Measure(cat, ecosys.PlatformWeb)
		mob := authproc.Measure(cat, ecosys.PlatformMobile)
		fmt.Println(report.Fig3(web, mob))
		fmt.Printf("total services: %d, total paths: %d (paper: 201 / 405)\n\n",
			cat.Len(), cat.TotalPaths())
	}
	if *all || *table1 {
		web := collect.Measure(cat, ecosys.PlatformWeb)
		mob := collect.Measure(cat, ecosys.PlatformMobile)
		fmt.Println(report.Table1(web, mob))
	}
	if *all || *layers {
		gw, err := engine.Graph(ecosys.PlatformWeb)
		if err != nil {
			fatal(err)
		}
		gm, err := engine.Graph(ecosys.PlatformMobile)
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.Layers(strategy.PathLayers(gw), strategy.PathLayers(gm)))
	}
	if *all || *domains {
		m, err := engine.Measure()
		if err != nil {
			fatal(err)
		}
		fmt.Println(report.Domains(m.Domains))
	}
	if *fig4 != "" || *all {
		g, err := dataset.Fig4Graph(cat, ecosys.BaselineAttacker())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Fig 4 — %d accounts: %d fringe (red), %d internal (blue), %d strong edges, %d weak edges\n",
			g.Len(), len(g.FringeNodes()), len(g.InternalNodes()),
			len(g.StrongEdges()), len(g.WeakEdges()))
		switch *fig4 {
		case "", "-":
			if *fig4 == "-" {
				if err := g.DOT(os.Stdout); err != nil {
					fatal(err)
				}
			}
		default:
			f, err := os.Create(*fig4)
			if err != nil {
				fatal(err)
			}
			if err := g.DOT(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Println("DOT written to", *fig4)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "measure:", err)
	os.Exit(1)
}
