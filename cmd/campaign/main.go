// Command campaign runs the population-scale chain-reaction attack:
// a seeded synthetic subscriber base (default one million) is swept by
// a worker pool that sniffs each victim's SMS OTP sessions off the
// simulated GSM air interface — all rigs sharing one precomputed A5/1
// TMTO table — and evaluates how far the compromise chains propagate
// through the calibrated 201-service account ecosystem.
//
// Usage:
//
//	campaign                          # 1M subscribers, table backend
//	campaign -subscribers 5000        # CI-sized smoke run
//	campaign -backend bitsliced       # per-session search, no table
//	campaign -platform web -top 25
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/actfort/actfort/internal/campaign"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/population"
)

func main() {
	var (
		subscribers = flag.Int("subscribers", 1_000_000, "population size")
		shardSize   = flag.Int("shard", population.DefaultShardSize, "subscribers per shard")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		seed        = flag.Int64("seed", 42, "population/world seed")
		backend     = flag.String("backend", "table", "shared A5/1 cracker backend (table, bitsliced, parallel, exhaustive)")
		keyBits     = flag.Int("keybits", 12, "A5/1 session-key space bits")
		platform    = flag.String("platform", "both", "attacked platforms: web, mobile or both")
		leak        = flag.Float64("leak", population.DefaultLeakFraction, "fraction of subscribers in leak databases")
		coverage    = flag.Float64("coverage", 1.0, "probability the rig covers a victim's cell")
		a50         = flag.Float64("a50", 0.2, "fraction of victims on unencrypted (A5/0) cells")
		reauthSkip  = flag.Float64("reauth-skip", 0.6, "probability a follow-up session reuses the victim's (RAND, Kc)")
		sessions    = flag.Int("sessions", 3, "OTP sessions sniffed per victim")
		top         = flag.Int("top", 15, "services shown in the takeover ranking")
		quiet       = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()
	// The library Configs read 0 as "use the default" and negative as
	// "off"; translate an explicitly passed 0 so `-a50 0` really means
	// no unencrypted cells (and likewise -leak/-coverage/-reauth-skip).
	zeroOff := map[string]*float64{
		"leak": leak, "coverage": coverage, "a50": a50, "reauth-skip": reauthSkip,
	}
	flag.Visit(func(f *flag.Flag) {
		if p, ok := zeroOff[f.Name]; ok && *p == 0 {
			*p = -1
		}
	})
	if err := run(runCfg{
		subscribers: *subscribers, shardSize: *shardSize, workers: *workers,
		seed: *seed, backend: *backend, keyBits: *keyBits, platform: *platform,
		leak: *leak, coverage: *coverage, a50: *a50, reauthSkip: *reauthSkip,
		sessions: *sessions, top: *top, quiet: *quiet,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

type runCfg struct {
	subscribers, shardSize, workers, keyBits, sessions, top int
	seed                                                    int64
	backend, platform                                       string
	leak, coverage, a50, reauthSkip                         float64
	quiet                                                   bool
}

func run(c runCfg) error {
	var platforms []ecosys.Platform
	switch strings.ToLower(c.platform) {
	case "web":
		platforms = []ecosys.Platform{ecosys.PlatformWeb}
	case "mobile":
		platforms = []ecosys.Platform{ecosys.PlatformMobile}
	case "both", "":
		platforms = ecosys.AllPlatforms()
	default:
		return fmt.Errorf("unknown platform %q (want web, mobile or both)", c.platform)
	}

	pop, err := population.New(population.Config{
		Seed:         c.seed,
		Size:         c.subscribers,
		ShardSize:    c.shardSize,
		LeakFraction: c.leak,
	})
	if err != nil {
		return err
	}

	progress := func(done, total int) {}
	if !c.quiet {
		lastPct := -1
		progress = func(done, total int) {
			pct := done * 100 / total
			if pct/5 > lastPct/5 || done == total {
				lastPct = pct
				fmt.Fprintf(os.Stderr, "campaign: %d/%d subscribers (%d%%)\n", done, total, pct)
			}
		}
	}

	eng, err := campaign.New(campaign.Config{
		Population:  pop,
		Workers:     c.workers,
		Backend:     c.backend,
		KeyBits:     c.keyBits,
		Platforms:   platforms,
		OTPSessions: c.sessions,
		ReauthSkip:  c.reauthSkip,
		A50Fraction: c.a50,
		Coverage:    c.coverage,
		Progress:    progress,
	})
	if err != nil {
		return err
	}
	if !c.quiet {
		fmt.Fprintf(os.Stderr, "campaign: %d subscribers, %d shards, backend %s\n",
			pop.Size(), pop.NumShards(), eng.Cracker().Name())
	}

	sum, err := eng.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Println(sum.Render(pop.Services(), c.top))
	return nil
}
