// Command campaign runs the population-scale chain-reaction attack:
// a seeded synthetic subscriber base (default one million) is swept by
// a worker pool that sniffs each victim's SMS OTP sessions off the
// simulated GSM air interface — all rigs sharing one precomputed A5/1
// TMTO table — and evaluates how far the compromise chains propagate
// through the calibrated 201-service account ecosystem.
//
// With -sweep it becomes the fortification evaluator: several
// declarative scenarios (countermeasure policy × radio environment ×
// attacker budget × victim segment) run against the SAME population
// and the SAME cracker table in one process, and the comparative
// report shows how much each program shrinks the takeover mass.
//
// Usage:
//
//	campaign                                   # 1M subscribers, table backend
//	campaign -subscribers 5000                 # CI-sized smoke run
//	campaign -backend bitsliced                # per-session search, no table
//	campaign -policy fortify-all               # one fortified run
//	campaign -sweep                            # baseline vs fortified vs A5/3 mix
//	campaign -sweep -scenarios baseline,harden-email
//	campaign -sweep -scenario-file sweep.json  # declarative scenario list
//	campaign -json                             # machine-readable summary
//
// Durable runs and multi-process sharding:
//
//	campaign -checkpoint-dir ck                # journaled; rerun to resume
//	campaign -checkpoint-dir ck -shard-range 0/2   # process 1 of 2
//	campaign -checkpoint-dir ck -shard-range 1/2   # process 2 of 2
//	campaign -checkpoint-dir ck -merge         # combine the partials
//
// An injected crash (-fault-crash, the recovery-test harness) exits
// with status 137, the same code a real kill -9 yields.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/actfort/actfort/internal/campaign"
	"github.com/actfort/actfort/internal/faultinject"
	"github.com/actfort/actfort/internal/obs"
	"github.com/actfort/actfort/internal/population"
	"github.com/actfort/actfort/internal/report"
)

func main() {
	var (
		subscribers = flag.Int("subscribers", 1_000_000, "population size")
		shardSize   = flag.Int("shard", population.DefaultShardSize, "subscribers per shard")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		seed        = flag.Int64("seed", 42, "population/world seed")
		backend     = flag.String("backend", "table", "shared A5/1 cracker backend (table, bitsliced, parallel, exhaustive)")
		keyBits     = flag.Int("keybits", 12, "A5/1 session-key space bits")
		leak        = flag.Float64("leak", population.DefaultLeakFraction, "fraction of subscribers in leak databases")
		materialize = flag.Bool("materialized-personas", false, "eagerly materialize every persona and leak record (ablation; default derives attributes lazily from the seed)")
		top         = flag.Int("top", 15, "services shown in the takeover ranking")
		quiet       = flag.Bool("quiet", false, "suppress progress output")
		jsonOut     = flag.Bool("json", false, "emit the summary as JSON instead of tables")

		// Single-run scenario knobs (ignored under -sweep).
		policy     = flag.String("policy", "", "countermeasure policy fortifying the catalog (none, unified-masking, harden-email, builtin-auth, fortify-all)")
		platform   = flag.String("platform", "both", "attacked platforms: web, mobile or both")
		a50        = flag.Float64("a50", 0.2, "fraction of victims on unencrypted (A5/0) cells")
		a53        = flag.Float64("a53", 0, "fraction of victims on A5/3-upgraded (uncrackable) cells")
		reauthSkip = flag.Float64("reauth-skip", 0.6, "probability a follow-up session reuses the victim's (RAND, Kc)")
		sessions   = flag.Int("sessions", 3, "OTP sessions sniffed per victim")
		receivers  = flag.Int("receivers", 16, "attacker receiver fleet size")
		channels   = flag.Int("channels", 0, "ARFCNs per serving cell (0 = fleet covers every channel)")
		segDomain  = flag.String("segment-domain", "", "restrict victims to subscribers of this service domain (e.g. fintech)")
		segLeak    = flag.String("segment-leak", "", "restrict victims to a leak cohort: leaked, clean, breach or wifi")

		// Sweep mode.
		sweep         = flag.Bool("sweep", false, "run a comparative scenario sweep over one shared population")
		scenarios     = flag.String("scenarios", "", "with -sweep: comma-separated built-in scenario names (empty = baseline,fortified,a53-mix)")
		scenarioFile  = flag.String("scenario-file", "", "with -sweep: JSON file holding the scenario list (overrides -scenarios)")
		sweepParallel = flag.Int("sweep-parallel", 1, "with -sweep: scenarios in flight at once, sharing the one -workers shard budget (1 = sequential; results are identical either way)")

		// Durability and multi-process sharding.
		ckptDir       = flag.String("checkpoint-dir", "", "journal completed shards under this directory; rerunning resumes from the last journaled shard")
		snapshotEvery = flag.Int("snapshot-every", 0, "journaled shards between snapshot folds (0 = 64)")
		shardRange    = flag.String("shard-range", "", "own shard range K/M of a multi-process run (e.g. 0/2 and 1/2); requires -checkpoint-dir")
		merge         = flag.Bool("merge", false, "combine the range-*/summary.json partials under -checkpoint-dir instead of running")

		// Fault injection (the crash-recovery test harness) and retry.
		faultCrash     = flag.String("fault-crash", "", "injected crash spec: comma-separated point:hit pairs (points: journal.append, snapshot.write, snapshot.rename, journal.truncate)")
		faultTransient = flag.Float64("fault-transient", 0, "per-shard transient-failure rate in [0, 1)")
		faultPoison    = flag.String("fault-poison", "", "comma-separated shard indices that fail every attempt (quarantined)")
		faultSeed      = flag.Uint64("fault-seed", 1, "seed keying the transient-failure schedule")
		shardAttempts  = flag.Int("shard-attempts", 0, "attempts per failing shard before quarantine (0 = 3)")
		retryBackoff   = flag.Duration("retry-backoff", 0, "base delay before a shard retry, doubling per attempt (0 = none)")
		retryMax       = flag.Duration("retry-backoff-max", time.Second, "retry delay cap")

		// Observability.
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus), /debug/vars and /debug/pprof on this address (e.g. :9090; empty = off)")
		traceFile   = flag.String("trace-file", "", "append the shard-lifecycle event trace to this JSONL file")
		liveTicker  = flag.Bool("progress", false, "print a live one-line status ticker (shards, victims/s, coverage, ETA) from the metrics registry")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"Usage: campaign [flags]\n\n"+
				"Population-scale chain-reaction campaign over the simulated GSM air\n"+
				"interface. Full flag reference — including the scenario-JSON zero-value\n"+
				"convention (0 = paper default, negative = none, above 1 = error) — in\n"+
				"cmd/campaign/README.md.\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	// The library Configs read 0 as "use the default" and negative as
	// "off"; translate an explicitly passed 0 so `-a50 0` really means
	// no unencrypted cells (and likewise -leak/-a53/-reauth-skip) and
	// `-receivers 0` really means no interception fleet.
	zeroOff := map[string]*float64{
		"leak": leak, "a50": a50, "a53": a53, "reauth-skip": reauthSkip,
	}
	flag.Visit(func(f *flag.Flag) {
		if p, ok := zeroOff[f.Name]; ok && *p == 0 {
			*p = -1
		}
		if f.Name == "receivers" && *receivers == 0 {
			*receivers = -1
		}
	})
	prof, err := obs.StartProfiler(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
	err = run(runCfg{
		subscribers: *subscribers, shardSize: *shardSize, workers: *workers,
		seed: *seed, backend: *backend, keyBits: *keyBits, leak: *leak,
		materialize: *materialize,
		top:         *top, quiet: *quiet, jsonOut: *jsonOut,
		scenario: campaign.Scenario{
			Name:     "cli",
			Policy:   *policy,
			Platform: *platform,
			Radio: campaign.RadioEnv{
				A50Fraction: *a50, A53Fraction: *a53,
				ReauthSkip: *reauthSkip, OTPSessions: *sessions,
			},
			Budget:  campaign.AttackerBudget{Receivers: *receivers, CellChannels: *channels},
			Segment: campaign.VictimSegment{Domain: *segDomain, LeakTier: *segLeak},
		},
		sweep: *sweep, scenarios: *scenarios, scenarioFile: *scenarioFile,
		sweepParallel: *sweepParallel,
		ckptDir:       *ckptDir, snapshotEvery: *snapshotEvery, shardRange: *shardRange, merge: *merge,
		faultCrash: *faultCrash, faultTransient: *faultTransient,
		faultPoison: *faultPoison, faultSeed: *faultSeed,
		shardAttempts: *shardAttempts, retryBackoff: *retryBackoff, retryMax: *retryMax,
		metricsAddr: *metricsAddr, traceFile: *traceFile, liveTicker: *liveTicker,
	})
	// Flush profiles before any exit path — including the injected-crash
	// one, which is precisely the run a profile is usually wanted from.
	if perr := prof.Stop(); perr != nil {
		fmt.Fprintln(os.Stderr, "campaign:", perr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		if errors.Is(err, faultinject.ErrCrash) {
			// The injected crash stands in for a kill -9; exit the way
			// one would so crash-recovery harnesses can't tell them
			// apart.
			os.Exit(137)
		}
		os.Exit(1)
	}
}

type runCfg struct {
	subscribers, shardSize, workers, keyBits, top int
	seed                                          int64
	backend                                       string
	leak                                          float64
	materialize                                   bool
	quiet, jsonOut                                bool
	scenario                                      campaign.Scenario
	sweep                                         bool
	scenarios                                     string
	scenarioFile                                  string
	sweepParallel                                 int

	ckptDir        string
	snapshotEvery  int
	shardRange     string
	merge          bool
	faultCrash     string
	faultTransient float64
	faultPoison    string
	faultSeed      uint64
	shardAttempts  int
	retryBackoff   time.Duration
	retryMax       time.Duration

	metricsAddr string
	traceFile   string
	liveTicker  bool
}

// parseShardRange parses "K/M" into the process index and count.
func parseShardRange(spec string) (k, m int, err error) {
	if _, err := fmt.Sscanf(spec, "%d/%d", &k, &m); err != nil {
		return 0, 0, fmt.Errorf("shard range %q: want K/M (e.g. 0/2)", spec)
	}
	if m <= 0 || k < 0 || k >= m {
		return 0, 0, fmt.Errorf("shard range %q: want 0 <= K < M", spec)
	}
	return k, m, nil
}

// faultInjector builds the optional crash/fault harness from the CLI
// flags (nil when no fault flags were used).
func faultInjector(c runCfg) (*faultinject.Injector, error) {
	if c.faultCrash == "" && c.faultTransient == 0 && c.faultPoison == "" {
		return nil, nil
	}
	crash, err := faultinject.ParseCrash(c.faultCrash)
	if err != nil {
		return nil, err
	}
	poisoned, err := faultinject.ParseShardList(c.faultPoison)
	if err != nil {
		return nil, err
	}
	return faultinject.New(faultinject.Config{
		Seed:          c.faultSeed,
		Crash:         crash,
		TransientRate: c.faultTransient,
		Poisoned:      poisoned,
	})
}

// runMerge combines the per-range partial results under the checkpoint
// directory into the whole-population summary.
func runMerge(c runCfg) error {
	if c.ckptDir == "" {
		return fmt.Errorf("-merge requires -checkpoint-dir")
	}
	dirs, err := filepath.Glob(filepath.Join(c.ckptDir, "range-*-of-*"))
	if err != nil {
		return err
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		return fmt.Errorf("no range-*-of-* checkpoint directories under %s (did the shard-range runs complete?)", c.ckptDir)
	}
	parts := make([]*campaign.Partial, 0, len(dirs))
	for _, d := range dirs {
		p, err := campaign.LoadPartial(d)
		if err != nil {
			return err
		}
		parts = append(parts, p)
	}
	merged, err := campaign.MergePartials(parts)
	if err != nil {
		return err
	}
	if c.jsonOut {
		return report.WriteJSON(os.Stdout, merged)
	}
	// The manifest pins the population inputs, so the service-name
	// table can be rebuilt without re-running anything.
	m := parts[0].Manifest
	pop, err := population.New(population.Config{
		Seed:            m.PopulationSeed,
		Size:            m.PopulationSize,
		ShardSize:       m.ShardSize,
		LeakFraction:    m.LeakFraction,
		EnrollmentScale: m.EnrollmentScale,
	})
	if err != nil {
		return err
	}
	fmt.Println(merged.Render(pop.Services(), c.top))
	return nil
}

// sweepList resolves the -sweep scenario selection.
func sweepList(c runCfg) ([]campaign.Scenario, error) {
	if c.scenarioFile != "" {
		f, err := os.Open(c.scenarioFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return campaign.LoadScenarios(f)
	}
	if c.scenarios == "" {
		return campaign.DefaultSweep(), nil
	}
	var out []campaign.Scenario
	for _, name := range strings.Split(c.scenarios, ",") {
		name = strings.TrimSpace(name)
		sc, ok := campaign.BuiltinScenario(name)
		if !ok {
			known := make([]string, 0, 8)
			for _, b := range campaign.BuiltinScenarios() {
				known = append(known, b.Name)
			}
			return nil, fmt.Errorf("unknown scenario %q (built-ins: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, sc)
	}
	return out, nil
}

// startTicker launches the -progress one-line status loop: it reads
// the run gauges the campaign aggregator maintains on the process-wide
// registry — the same series a /metrics scrape sees — and stops with
// ctx.
func startTicker(ctx context.Context) {
	go func() {
		t := time.NewTicker(2 * time.Second)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				val := func(name string) float64 {
					v, _ := obs.Default.Value(name)
					return v
				}
				subsDone := val("campaign_run_subscribers_done")
				subsTotal := val("campaign_run_subscribers_total")
				vps := val("campaign_victims_per_sec")
				eta := "?"
				if vps > 0 && subsTotal > subsDone {
					eta = (time.Duration((subsTotal - subsDone) / vps * float64(time.Second))).Round(time.Second).String()
				}
				fmt.Fprintf(os.Stderr,
					"campaign: %.0f/%.0f shards | %.0f/%.0f subscribers | %.0f victims/s | coverage %.3f | ETA %s\n",
					val("campaign_run_shards_done"), val("campaign_run_shards_total"),
					subsDone, subsTotal, vps, val("campaign_coverage_fraction"), eta)
			}
		}
	}()
}

func run(c runCfg) error {
	if c.merge {
		return runMerge(c)
	}
	// SIGINT/SIGTERM cancel the run instead of killing the process, so
	// profiles, the trace file and the metrics server unwind cleanly (a
	// checkpointed run resumes on rerun either way).
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()
	if c.metricsAddr != "" {
		obs.Default.PublishExpvar("actfort")
		obs.Default.StartRuntimePoller(ctx, 0)
		addr, stopSrv, err := obs.Default.StartServer(ctx, c.metricsAddr)
		if err != nil {
			return err
		}
		defer stopSrv()
		if !c.quiet {
			fmt.Fprintf(os.Stderr, "campaign: serving /metrics, /debug/vars, /debug/pprof on http://%s\n", addr)
		}
	}
	if c.liveTicker {
		startTicker(ctx)
	}
	pop, err := population.New(population.Config{
		Seed:                 c.seed,
		Size:                 c.subscribers,
		ShardSize:            c.shardSize,
		LeakFraction:         c.leak,
		MaterializedPersonas: c.materialize,
	})
	if err != nil {
		return err
	}

	// Progress lines: single runs report bare percentages; sweeps use
	// the scenario-aware hook so interleaved lines from overlapping
	// scenarios (-sweep-parallel) stay attributable. The per-scenario
	// threshold state sits behind a mutex because parallel scenarios
	// report concurrently.
	progress := func(done, total int) {}
	scenarioProgress := func(string, int, int) {}
	if !c.quiet && !c.sweep {
		lastPct := -1
		progress = func(done, total int) {
			pct := done * 100 / total
			if pct/5 > lastPct/5 || done == total {
				lastPct = pct
				fmt.Fprintf(os.Stderr, "campaign: %d/%d subscribers (%d%%)\n", done, total, pct)
			}
		}
	}
	if !c.quiet && c.sweep {
		var mu sync.Mutex
		lastPct := map[string]int{}
		scenarioProgress = func(scenario string, done, total int) {
			pct := done * 100 / total
			mu.Lock()
			defer mu.Unlock()
			last, ok := lastPct[scenario]
			if !ok {
				last = -1
			}
			if pct/20 > last/20 || done == total {
				lastPct[scenario] = pct
				fmt.Fprintf(os.Stderr, "campaign: [%s] %d/%d subscribers (%d%%)\n", scenario, done, total, pct)
			}
		}
	}

	fault, err := faultInjector(c)
	if err != nil {
		return err
	}
	cfg := campaign.Config{
		Population:       pop,
		Workers:          c.workers,
		Backend:          c.backend,
		KeyBits:          c.keyBits,
		Progress:         progress,
		ScenarioProgress: scenarioProgress,
		SweepParallel:    c.sweepParallel,
		MaxShardAttempts: c.shardAttempts,
		RetryBackoff:     c.retryBackoff,
		RetryBackoffMax:  c.retryMax,
		Fault:            fault,
	}
	if c.traceFile != "" {
		tw, err := obs.OpenTraceFile(c.traceFile)
		if err != nil {
			return err
		}
		defer func() {
			if err := tw.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "campaign: trace file: %v\n", err)
			}
		}()
		cfg.Trace = tw
	}
	rangeK, rangeM := 0, 1
	cfg.ShardHi = pop.NumShards()
	if c.shardRange != "" {
		if c.ckptDir == "" {
			return fmt.Errorf("-shard-range requires -checkpoint-dir (the partial result must land somewhere mergeable)")
		}
		rangeK, rangeM, err = parseShardRange(c.shardRange)
		if err != nil {
			return err
		}
		num := pop.NumShards()
		if rangeM > num {
			return fmt.Errorf("shard range %s: only %d shards to split", c.shardRange, num)
		}
		cfg.ShardLo = rangeK * num / rangeM
		cfg.ShardHi = (rangeK + 1) * num / rangeM
	}
	if c.ckptDir != "" {
		// Each process owns its own journal: range-K-of-M under the
		// shared checkpoint root (range-0-of-1 for single-process runs),
		// which is exactly the layout -merge globs.
		cfg.Checkpoint = &campaign.Checkpoint{
			Dir:           filepath.Join(c.ckptDir, fmt.Sprintf("range-%d-of-%d", rangeK, rangeM)),
			SnapshotEvery: c.snapshotEvery,
		}
	}
	if !c.sweep {
		cfg.Scenario = c.scenario
	}
	eng, err := campaign.New(cfg)
	if err != nil {
		return err
	}
	if !c.quiet {
		fmt.Fprintf(os.Stderr, "campaign: %d subscribers, %d shards, backend %s\n",
			pop.Size(), pop.NumShards(), eng.Cracker().Name())
		if cfg.Checkpoint != nil {
			fmt.Fprintf(os.Stderr, "campaign: checkpointing shards [%d, %d) to %s\n",
				cfg.ShardLo, cfg.ShardHi, cfg.Checkpoint.Dir)
		}
	}

	if c.sweep {
		list, err := sweepList(c)
		if err != nil {
			return err
		}
		if !c.quiet {
			names := make([]string, 0, len(list))
			for _, sc := range list {
				names = append(names, sc.Name)
			}
			fmt.Fprintf(os.Stderr, "campaign: sweeping %d scenarios: %s\n", len(list), strings.Join(names, ", "))
		}
		sw, err := eng.RunSweep(ctx, list)
		if err != nil {
			return err
		}
		if c.jsonOut {
			return report.WriteJSON(os.Stdout, sw)
		}
		fmt.Println(sw.Render(pop.Services(), c.top))
		return nil
	}

	sum, err := eng.Run(ctx)
	if err != nil {
		return err
	}
	if c.jsonOut {
		return report.WriteJSON(os.Stdout, sum)
	}
	fmt.Println(sum.Render(pop.Services(), c.top))
	return nil
}
