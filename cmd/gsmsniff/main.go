// Command gsmsniff reproduces the Fig 5/Fig 6 demonstration: a
// 16-receiver passive rig camps on a cell's ARFCNs, services send
// verification codes to nearby victims over A5/1-encrypted GSM, and
// the sniffer cracks the session keys and prints Wireshark-style
// capture lines filtered by a display-filter expression.
//
// The key-recovery backend is pluggable: -backend selects the
// exhaustive sweep, the 64-lane bitsliced search (default), or the
// Kraken-style precomputed TMTO table; -table-file persists the table
// across runs so the precomputation is paid once.
//
// Usage:
//
//	gsmsniff [-receivers 16] [-victims 4] [-filter 'sms.text contains "code"']
//	         [-keybits 12] [-backend bitsliced|exhaustive|parallel|table]
//	         [-table-file kraken.tbl] [-chainlen 32]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"time"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/identity"
	"github.com/actfort/actfort/internal/obs"
	"github.com/actfort/actfort/internal/sniffer"
	"github.com/actfort/actfort/internal/telecom"
)

// prof flushes on every exit path, including fatal's os.Exit.
var prof *obs.Profiler

func main() {
	var (
		receivers  = flag.Int("receivers", 16, "receiver (C118) count")
		victims    = flag.Int("victims", 4, "victims in the cell")
		filterSrc  = flag.String("filter", `sms.text contains "code"`, "display filter")
		keyBits    = flag.Int("keybits", 12, "A5/1 session-key space bits")
		backend    = flag.String("backend", "bitsliced", "key-recovery backend: exhaustive|parallel|bitsliced|table")
		tableFile  = flag.String("table-file", "", "with -backend table: load the TMTO table from this file if it exists, else build and save it")
		chainLen   = flag.Int("chainlen", 0, "with -backend table: distinguished-point chain length (0 = default)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	var err error
	if prof, err = obs.StartProfiler(*cpuProfile, *memProfile); err != nil {
		fatal(err)
	}
	defer stopProfiler()

	// telecom.NewNetwork silently substitutes its 16-bit default for
	// Bits <= 0, which would diverge from the space the cracker was
	// built for; reject out-of-range values up front.
	if *keyBits < 1 || *keyBits > 24 {
		fatal(fmt.Errorf("keybits must be in [1, 24], got %d", *keyBits))
	}

	f, err := sniffer.ParseFilter(*filterSrc)
	if err != nil {
		fatal(err)
	}

	space := a51.KeySpace{Base: 0xC118000000000000, Bits: *keyBits}
	netCfg := telecom.Config{KeySpace: space, Seed: 7}
	var cracker a51.Cracker
	if *backend == "table" {
		// The network schedules paging bursts on the CCCH frame
		// classes of the 51×26 COUNT schedule; a table precomputed
		// over telecom.PagingFrames() resolves every session by
		// lookup.
		table, err := obtainTable(space, *tableFile, *chainLen)
		if err != nil {
			fatal(err)
		}
		cracker = table
	} else {
		if cracker, err = a51.NewCracker(*backend, space, 0); err != nil {
			fatal(err)
		}
	}

	net := telecom.NewNetwork(netCfg)
	cell, err := net.AddCell(telecom.Cell{
		ID: "cell-plaza", ARFCNs: []int{512, 513, 514, 515}, Cipher: telecom.CipherA51,
	})
	if err != nil {
		fatal(err)
	}

	gen := identity.NewGenerator(7)
	phones := make([]string, 0, *victims)
	for i := 0; i < *victims; i++ {
		p := gen.Persona(i)
		sub, err := net.Register(fmt.Sprintf("imsi-%03d", i), p.Phone)
		if err != nil {
			fatal(err)
		}
		term, err := net.NewTerminal(sub, telecom.RATGSM)
		if err != nil {
			fatal(err)
		}
		if err := term.Attach(cell); err != nil {
			fatal(err)
		}
		phones = append(phones, p.Phone)
	}

	rig := sniffer.New(net, sniffer.Config{MaxReceivers: *receivers, Filter: f, Cracker: cracker})
	defer rig.Stop()
	tune := cell.ARFCNs
	if len(tune) > *receivers {
		tune = tune[:*receivers]
	}
	if err := rig.Tune(tune...); err != nil {
		fatal(err)
	}
	fmt.Printf("rig: %d receivers on ARFCNs %v, filter %s, cracker %s\n\n",
		len(rig.Tuned()), rig.Tuned(), f, cracker.Name())

	// Traffic mix: OTPs from the paper's Fig 5 senders plus chatter.
	traffic := []struct{ from, text string }{
		{"Google", "G-845512 is your Google verification code."},
		{"Facebook", "Your Facebook confirmation code is 339201"},
		{"PayPal", "PayPal: your security code is 667788"},
		{"Mom", "dinner at eight?"},
		{"Alipay", "Alipay verification code: 901244. Valid for 5 minutes."},
	}
	for _, tr := range traffic {
		for _, phone := range phones {
			if _, err := net.SendSMS(tr.from, phone, tr.text); err != nil {
				fatal(err)
			}
		}
	}

	fmt.Println("captures (Fig 5 style):")
	for _, c := range rig.Captures() {
		fmt.Println(" ", c.WiresharkLine())
		fmt.Printf("    session %d on %s: Kc %#x recovered in %v\n",
			c.SessionID, c.CellID, c.Kc, c.CrackTime.Round(0))
	}
	st := rig.Stats()
	fmt.Printf("\nstats: %d bursts, %d sessions, %d decoded, %d/%d cracks (%d cache hits), %d filtered out\n",
		st.BurstsSeen, st.SessionsComplete, st.MessagesDecoded,
		st.CracksSucceeded, st.CracksAttempted, st.CrackCacheHits, st.FilteredOut)
}

// obtainTable loads a previously saved TMTO table when path exists and
// matches the requested key space, and otherwise builds one (saving it
// to path when given) — the "download the Kraken tables once" step.
func obtainTable(space a51.KeySpace, path string, chainLen int) (*a51.Table, error) {
	if path != "" {
		f, err := os.Open(path)
		switch {
		case err == nil:
			defer f.Close()
			table, err := a51.LoadTable(f)
			if err != nil {
				return nil, fmt.Errorf("loading table %s: %w", path, err)
			}
			if table.Space() != space {
				return nil, fmt.Errorf("table %s was built for base=%#x bits=%d, want bits=%d (delete it to rebuild)",
					path, table.Space().Base, table.Space().Bits, space.Bits)
			}
			// The network pages on the CCCH frame classes; a table
			// missing any of them would silently degrade uncovered
			// sessions to full sweeps.
			covered := make(map[uint32]bool, len(table.Frames()))
			for _, f := range table.Frames() {
				covered[f] = true
			}
			for _, f := range telecom.PagingFrames() {
				if !covered[f] {
					return nil, fmt.Errorf("table %s covers %d frames but paging frame class %d is missing (delete it to rebuild)",
						path, len(table.Frames()), f)
				}
			}
			fmt.Printf("table: loaded %s (%d frames)\n", path, len(table.Frames()))
			return table, nil
		case !errors.Is(err, fs.ErrNotExist):
			// Only a missing file warrants a rebuild; an unreadable
			// existing table must not be silently overwritten.
			return nil, fmt.Errorf("opening table %s: %w", path, err)
		}
	}
	start := time.Now()
	table, err := a51.BuildTable(space, a51.TableConfig{Frames: telecom.PagingFrames(), ChainLen: chainLen})
	if err != nil {
		return nil, err
	}
	fmt.Printf("table: built %d-bit space × %d frames in %v\n",
		space.Bits, len(table.Frames()), time.Since(start).Round(time.Millisecond))
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := table.Save(f); err != nil {
			return nil, fmt.Errorf("saving table %s: %w", path, err)
		}
		fmt.Printf("table: saved to %s\n", path)
	}
	return table, nil
}

// stopProfiler flushes any in-progress profiles; nil-safe and
// idempotent, so both the deferred call and fatal may run it.
func stopProfiler() {
	if err := prof.Stop(); err != nil {
		fmt.Fprintln(os.Stderr, "gsmsniff:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gsmsniff:", err)
	stopProfiler()
	os.Exit(1)
}
