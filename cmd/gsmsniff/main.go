// Command gsmsniff reproduces the Fig 5/Fig 6 demonstration: a
// 16-receiver passive rig camps on a cell's ARFCNs, services send
// verification codes to nearby victims over A5/1-encrypted GSM, and
// the sniffer cracks the session keys and prints Wireshark-style
// capture lines filtered by a display-filter expression.
//
// Usage:
//
//	gsmsniff [-receivers 16] [-victims 4] [-filter 'sms.text contains "code"']
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/identity"
	"github.com/actfort/actfort/internal/sniffer"
	"github.com/actfort/actfort/internal/telecom"
)

func main() {
	var (
		receivers = flag.Int("receivers", 16, "receiver (C118) count")
		victims   = flag.Int("victims", 4, "victims in the cell")
		filterSrc = flag.String("filter", `sms.text contains "code"`, "display filter")
		keyBits   = flag.Int("keybits", 12, "A5/1 session-key space bits")
	)
	flag.Parse()

	f, err := sniffer.ParseFilter(*filterSrc)
	if err != nil {
		fatal(err)
	}

	net := telecom.NewNetwork(telecom.Config{
		KeySpace: a51.KeySpace{Base: 0xC118000000000000, Bits: *keyBits},
		Seed:     7,
	})
	cell, err := net.AddCell(telecom.Cell{
		ID: "cell-plaza", ARFCNs: []int{512, 513, 514, 515}, Cipher: telecom.CipherA51,
	})
	if err != nil {
		fatal(err)
	}

	gen := identity.NewGenerator(7)
	phones := make([]string, 0, *victims)
	for i := 0; i < *victims; i++ {
		p := gen.Persona(i)
		sub, err := net.Register(fmt.Sprintf("imsi-%03d", i), p.Phone)
		if err != nil {
			fatal(err)
		}
		term, err := net.NewTerminal(sub, telecom.RATGSM)
		if err != nil {
			fatal(err)
		}
		if err := term.Attach(cell); err != nil {
			fatal(err)
		}
		phones = append(phones, p.Phone)
	}

	rig := sniffer.New(net, sniffer.Config{MaxReceivers: *receivers, Filter: f})
	defer rig.Stop()
	tune := cell.ARFCNs
	if len(tune) > *receivers {
		tune = tune[:*receivers]
	}
	if err := rig.Tune(tune...); err != nil {
		fatal(err)
	}
	fmt.Printf("rig: %d receivers on ARFCNs %v, filter %s\n\n", len(rig.Tuned()), rig.Tuned(), f)

	// Traffic mix: OTPs from the paper's Fig 5 senders plus chatter.
	traffic := []struct{ from, text string }{
		{"Google", "G-845512 is your Google verification code."},
		{"Facebook", "Your Facebook confirmation code is 339201"},
		{"PayPal", "PayPal: your security code is 667788"},
		{"Mom", "dinner at eight?"},
		{"Alipay", "Alipay verification code: 901244. Valid for 5 minutes."},
	}
	for i, tr := range traffic {
		for _, phone := range phones {
			if _, err := net.SendSMS(tr.from, phone, tr.text); err != nil {
				fatal(err)
			}
		}
		_ = i
	}

	fmt.Println("captures (Fig 5 style):")
	for _, c := range rig.Captures() {
		fmt.Println(" ", c.WiresharkLine())
		fmt.Printf("    session %d on %s: Kc %#x recovered in %v\n",
			c.SessionID, c.CellID, c.Kc, c.CrackTime.Round(0))
	}
	st := rig.Stats()
	fmt.Printf("\nstats: %d bursts, %d sessions, %d decoded, %d/%d cracks, %d filtered out\n",
		st.BurstsSeen, st.SessionsComplete, st.MessagesDecoded,
		st.CracksSucceeded, st.CracksAttempted, st.FilteredOut)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gsmsniff:", err)
	os.Exit(1)
}
