// Command campaignd is the resident campaign query service: it builds
// ONE campaign engine — population, shared A5/1 TMTO cracker table,
// plan cache, sniffer-rig pool — at startup and then answers scenario
// queries over HTTP for the life of the process, so the expensive
// amortizable state is paid once instead of per cmd/campaign
// invocation.
//
// Endpoints (one listener, one mux):
//
//	POST /v1/scenario   campaign.Scenario JSON → Summary JSON
//	POST /v1/sweep      scenario list (scenario-file format) → SweepSummary
//	GET  /v1/healthz    liveness: 200 once listening
//	GET  /v1/readyz     readiness: 200 only after engine warm-up
//	GET  /metrics       Prometheus text (plus /debug/vars, /debug/pprof)
//
// The listener comes up immediately (healthz green, readyz 503) while
// the population and cracker table build in the background; SetEngine
// flips readiness when warm-up completes. SIGTERM/SIGINT starts a
// graceful drain: readyz goes 503 so load balancers step away, new
// queries are refused, in-flight queries finish (bounded by
// -drain-timeout), then the process exits.
//
// Usage:
//
//	campaignd                                  # 100k subscribers on :8080
//	campaignd -subscribers 1000000 -addr :9000
//	campaignd -rate 50 -burst 100              # token-bucket admission, 429 beyond
//	campaignd -max-inflight 8 -request-timeout 30s
//	campaignd -trace-file trace.jsonl          # request + shard lifecycle JSONL
//
// The sibling cmd/campaignd/loadtest drives a running campaignd and
// reports p50/p90/p99 latency, throughput and error rate as JSON —
// the harness behind the docs/BENCHMARKS.md service-latency tables and
// the CI load-smoke gate.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/actfort/actfort/internal/campaign"
	"github.com/actfort/actfort/internal/obs"
	"github.com/actfort/actfort/internal/population"
	"github.com/actfort/actfort/internal/ratelimit"
	"github.com/actfort/actfort/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address for the query API and diagnostics")
		subscribers = flag.Int("subscribers", 100_000, "population size")
		shardSize   = flag.Int("shard", population.DefaultShardSize, "subscribers per shard")
		seed        = flag.Int64("seed", 42, "population/world seed")
		workers     = flag.Int("workers", 0, "engine shard worker pool (0 = GOMAXPROCS)")
		backend     = flag.String("backend", "table", "shared A5/1 cracker backend (table, bitsliced, parallel, exhaustive)")
		keyBits     = flag.Int("keybits", 12, "A5/1 session-key space bits")
		leak        = flag.Float64("leak", population.DefaultLeakFraction, "fraction of subscribers in leak databases")
		sweepPar    = flag.Int("sweep-parallel", 1, "scenarios in flight per /v1/sweep request, sharing the -workers budget")

		rate        = flag.Float64("rate", 0, "query admission rate in requests/s (0 = unlimited); beyond -burst, requests are answered 429")
		burst       = flag.Int("burst", 0, "token-bucket burst for -rate (0 with -rate > 0 = rate rounded up)")
		maxInflight = flag.Int("max-inflight", 0, "queries running at once; more queue until a slot or their deadline (0 = -workers, then GOMAXPROCS)")
		reqTimeout  = flag.Duration("request-timeout", 2*time.Minute, "per-query deadline, queue wait included (0 = none)")
		drainT      = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound after SIGTERM before in-flight queries are abandoned")

		traceFile = flag.String("trace-file", "", "append request + shard lifecycle events to this JSONL file")
		quiet     = flag.Bool("quiet", false, "suppress startup progress output")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"Usage: campaignd [flags]\n\n"+
				"Resident campaign query service: one engine (population + A5/1 TMTO\n"+
				"table + rig pool) built at startup, scenario queries over HTTP after.\n"+
				"Endpoint and operations reference in cmd/campaignd/README.md.\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if err := run(runCfg{
		addr: *addr, subscribers: *subscribers, shardSize: *shardSize,
		seed: *seed, workers: *workers, backend: *backend, keyBits: *keyBits,
		leak: *leak, sweepParallel: *sweepPar,
		rate: *rate, burst: *burst, maxInflight: *maxInflight,
		requestTimeout: *reqTimeout, drainTimeout: *drainT,
		traceFile: *traceFile, quiet: *quiet,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "campaignd:", err)
		os.Exit(1)
	}
}

type runCfg struct {
	addr                            string
	subscribers, shardSize, workers int
	keyBits, sweepParallel, burst   int
	seed                            int64
	backend                         string
	leak, rate                      float64
	maxInflight                     int
	requestTimeout, drainTimeout    time.Duration
	traceFile                       string
	quiet                           bool
}

func run(c runCfg) error {
	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()

	var tw *obs.TraceWriter
	if c.traceFile != "" {
		var err error
		if tw, err = obs.OpenTraceFile(c.traceFile); err != nil {
			return err
		}
		defer func() {
			if err := tw.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "campaignd: trace file: %v\n", err)
			}
		}()
	}

	burst := c.burst
	if burst <= 0 && c.rate > 0 {
		burst = int(c.rate) + 1
	}
	maxInflight := c.maxInflight
	if maxInflight <= 0 {
		maxInflight = c.workers // 0 falls through to GOMAXPROCS in server.New
	}
	srv := server.New(server.Config{
		Limiter:        ratelimit.New(c.rate, burst),
		MaxInFlight:    maxInflight,
		RequestTimeout: c.requestTimeout,
		Trace:          tw,
	})

	// The listener comes up before the engine: healthz answers
	// immediately, readyz (and the query endpoints) say 503 until
	// warm-up delivers the engine below.
	obs.Default.PublishExpvar("actfort")
	obs.Default.StartRuntimePoller(ctx, 0)
	mux := obs.Default.NewMux()
	srv.Register(mux)
	httpSrv, err := obs.Default.Serve(ctx, c.addr, mux)
	if err != nil {
		return err
	}
	httpSrv.ShutdownTimeout = c.drainTimeout
	defer httpSrv.Close()
	if !c.quiet {
		fmt.Fprintf(os.Stderr, "campaignd: listening on http://%s (engine warming up)\n", httpSrv.Addr())
	}

	// Engine warm-up: population + cracker table. Run on the main
	// goroutine — there is nothing else to do until it finishes, and a
	// build error should stop the process before it ever reports ready.
	warm := time.Now()
	pop, err := population.New(population.Config{
		Seed: c.seed, Size: c.subscribers, ShardSize: c.shardSize,
		LeakFraction: c.leak,
	})
	if err != nil {
		return err
	}
	eng, err := campaign.New(campaign.Config{
		Population:    pop,
		Workers:       c.workers,
		Backend:       c.backend,
		KeyBits:       c.keyBits,
		SweepParallel: c.sweepParallel,
		Trace:         tw,
	})
	if err != nil {
		return err
	}
	srv.SetEngine(eng)
	if !c.quiet {
		fmt.Fprintf(os.Stderr,
			"campaignd: ready — %d subscribers, %d shards, backend %s (warm-up %s)\n",
			pop.Size(), pop.NumShards(), eng.Cracker().Name(),
			time.Since(warm).Round(time.Millisecond))
	}

	// Serve until the first SIGTERM/SIGINT, then drain: stop admitting,
	// let in-flight queries finish (bounded), and shut the listener
	// down gracefully.
	<-ctx.Done()
	if !c.quiet {
		fmt.Fprintln(os.Stderr, "campaignd: draining")
	}
	srv.StartDrain()
	drainCtx, cancel := context.WithTimeout(context.Background(), c.drainTimeout)
	defer cancel()
	if !srv.Drain(drainCtx) {
		fmt.Fprintln(os.Stderr, "campaignd: drain timeout — abandoning in-flight queries")
	}
	return httpSrv.Close()
}
