// Command loadtest drives a running campaignd with a deterministic
// weighted request mix and reports latency quantiles, throughput and
// error rate as JSON — the Go-native replacement for an external load
// tool, built on internal/loadgen (whose histogram machinery matches
// the server's own /metrics buckets). It produces the numbers in
// docs/BENCHMARKS.md's service-latency tables and the report the CI
// load-smoke job gates with jq.
//
// Usage:
//
//	loadtest -url http://127.0.0.1:8080                  # mixed mix, 200 requests
//	loadtest -mix scenario -requests 500 -concurrency 16
//	loadtest -mix sweep -requests 50
//	loadtest -wait 120s                                  # block on /v1/readyz first
//
// Mixes:
//
//	scenario  baseline and fortified single-scenario queries (1:1)
//	sweep     two-scenario comparative sweep queries
//	mixed     scenario:sweep at 4:1 — the sizing-guide "interactive
//	          queries with periodic comparative jobs" profile
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"github.com/actfort/actfort/internal/campaign"
	"github.com/actfort/actfort/internal/loadgen"
	"github.com/actfort/actfort/internal/report"
)

func main() {
	var (
		url         = flag.String("url", "http://127.0.0.1:8080", "campaignd base URL")
		mix         = flag.String("mix", "mixed", "request mix: scenario, sweep or mixed")
		requests    = flag.Int("requests", 200, "total requests to issue")
		concurrency = flag.Int("concurrency", 8, "concurrent workers")
		wait        = flag.Duration("wait", 0, "poll /v1/readyz up to this long before starting (0 = don't wait)")
		out         = flag.String("out", "", "write the JSON report here instead of stdout")
	)
	flag.Parse()
	if err := run(*url, *mix, *requests, *concurrency, *wait, *out); err != nil {
		fmt.Fprintln(os.Stderr, "loadtest:", err)
		os.Exit(1)
	}
}

// targets builds the named request mix from the same scenario shapes
// the BENCHMARKS methodology pins.
func targets(mix string) ([]loadgen.Target, error) {
	mustJSON := func(v any) []byte {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err) // plain-data scenario structs always marshal
		}
		return b
	}
	baseline := mustJSON(campaign.Scenario{Name: "baseline"})
	fortified := mustJSON(campaign.Scenario{Name: "fortified", Policy: "fortify-all"})
	sweep := mustJSON([]campaign.Scenario{
		{Name: "baseline"},
		{Name: "fortified", Policy: "fortify-all"},
	})
	scenarioTargets := []loadgen.Target{
		{Name: "scenario:baseline", Path: "/v1/scenario", Body: baseline, Weight: 1},
		{Name: "scenario:fortified", Path: "/v1/scenario", Body: fortified, Weight: 1},
	}
	sweepTarget := loadgen.Target{Name: "sweep:baseline-vs-fortified", Path: "/v1/sweep", Body: sweep, Weight: 1}
	switch mix {
	case "scenario":
		return scenarioTargets, nil
	case "sweep":
		return []loadgen.Target{sweepTarget}, nil
	case "mixed":
		mixed := []loadgen.Target{
			{Name: "scenario:baseline", Path: "/v1/scenario", Body: baseline, Weight: 2},
			{Name: "scenario:fortified", Path: "/v1/scenario", Body: fortified, Weight: 2},
			sweepTarget,
		}
		return mixed, nil
	default:
		return nil, fmt.Errorf("unknown mix %q (want scenario, sweep or mixed)", mix)
	}
}

// waitReady polls /v1/readyz until it answers 200 or the deadline
// passes — engine warm-up on a large population takes a while, and a
// load run against a warming server would measure 503s, not latency.
func waitReady(url string, d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		resp, err := http.Get(url + "/v1/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not ready after %s", url, d)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

func run(url, mix string, requests, concurrency int, wait time.Duration, out string) error {
	tgts, err := targets(mix)
	if err != nil {
		return err
	}
	if wait > 0 {
		if err := waitReady(url, wait); err != nil {
			return err
		}
	}
	rep, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     url,
		Targets:     tgts,
		Requests:    requests,
		Concurrency: concurrency,
	})
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return report.WriteJSON(w, rep)
}
