// Command actfort queries the analysis engine: attack plans against a
// target account, the forward-closure victim set, node descriptions
// and DOT export of the full Transformation Dependency Graph.
//
// Usage:
//
//	actfort -target alipay/mobile            # backward chain search
//	actfort -target alipay/mobile -plans 3   # several alternatives
//	actfort -victims                         # forward closure from AP
//	actfort -describe ctrip/web              # Fig 12 node structure
//	actfort -flow alipay/mobile              # recursive auth flow (§III.B)
//	actfort -dot graph.dot                   # full-ecosystem DOT
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/actfort/actfort/internal/authproc"
	"github.com/actfort/actfort/internal/core"
	"github.com/actfort/actfort/internal/dataset"
	"github.com/actfort/actfort/internal/ecosys"
)

func main() {
	var (
		target   = flag.String("target", "", "account to attack, as service/platform")
		plans    = flag.Int("plans", 1, "number of alternative plans to list")
		victims  = flag.Bool("victims", false, "compute the forward-closure victim set")
		describe = flag.String("describe", "", "describe one node (service/platform)")
		flow     = flag.String("flow", "", "render the recursive authentication flow of one node (service/platform)")
		dot      = flag.String("dot", "", "write the full TDG as DOT to this file")
		depth    = flag.Int("depth", 0, "max chain depth (0 = default)")
	)
	flag.Parse()

	cat, err := dataset.Default()
	if err != nil {
		fatal(err)
	}
	engine, err := core.New(cat, ecosys.BaselineAttacker())
	if err != nil {
		fatal(err)
	}

	switch {
	case *target != "":
		id, err := parseAccount(*target)
		if err != nil {
			fatal(err)
		}
		found, err := engine.AttackPlans(id, *depth, *plans)
		if err != nil {
			fatal(err)
		}
		for i, p := range found {
			fmt.Printf("plan %d (depth %d): %s\n", i+1, p.Depth(), p)
			for _, step := range p.Steps {
				line := "  compromise " + step.Account.String() + " via " + step.PathID
				if len(step.Parents) > 0 {
					names := make([]string, 0, len(step.Parents))
					for _, par := range step.Parents {
						names = append(names, par.String())
					}
					line += " (needs " + strings.Join(names, " + ") + ")"
				}
				fmt.Println(line)
			}
		}
	case *victims:
		res, err := engine.Victims(nil)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("compromised %d accounts in %d rounds; %d survive\n",
			res.VictimCount(), len(res.Rounds), len(res.Survivors))
		for i, round := range res.Rounds {
			fmt.Printf("round %d: %d accounts\n", i+1, len(round))
		}
		if len(res.Survivors) > 0 {
			names := make([]string, 0, len(res.Survivors))
			for _, s := range res.Survivors {
				names = append(names, s.String())
			}
			fmt.Println("survivors:", strings.Join(names, ", "))
		}
	case *describe != "":
		id, err := parseAccount(*describe)
		if err != nil {
			fatal(err)
		}
		g, err := engine.Graph()
		if err != nil {
			fatal(err)
		}
		desc, err := g.DescribeNode(id)
		if err != nil {
			fatal(err)
		}
		fmt.Print(desc)
	case *flow != "":
		id, err := parseAccount(*flow)
		if err != nil {
			fatal(err)
		}
		pr, ok := cat.PresenceOf(id)
		if !ok {
			fatal(fmt.Errorf("unknown account %s", id))
		}
		fmt.Print(authproc.FlowTree(id.Service, pr))
	case *dot != "":
		g, err := engine.Graph()
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*dot)
		if err != nil {
			fatal(err)
		}
		if err := g.DOT(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("DOT written to", *dot)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parseAccount(s string) (ecosys.AccountID, error) {
	parts := strings.SplitN(s, "/", 2)
	if len(parts) != 2 {
		return ecosys.AccountID{}, fmt.Errorf("want service/platform, got %q", s)
	}
	var platform ecosys.Platform
	switch parts[1] {
	case "web":
		platform = ecosys.PlatformWeb
	case "mobile":
		platform = ecosys.PlatformMobile
	default:
		return ecosys.AccountID{}, fmt.Errorf("unknown platform %q", parts[1])
	}
	return ecosys.AccountID{Service: parts[0], Platform: platform}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "actfort:", err)
	os.Exit(1)
}
