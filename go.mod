module github.com/actfort/actfort

go 1.24
