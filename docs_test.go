package actfort_test

// The documentation gate CI's docs job runs: a markdown link check
// over the README and docs tree, and an exported-identifier
// doc-comment check (the revive `exported` rule, implemented with
// go/parser so the repo needs no extra tooling) over the packages the
// documentation layer covers. Both run under plain `go test`, so a
// broken link or an undocumented export fails tier-1 too.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles are the markdown files whose links must resolve.
var docFiles = []string{
	"README.md",
	"docs/ARCHITECTURE.md",
	"docs/BENCHMARKS.md",
	"docs/OBSERVABILITY.md",
	"cmd/campaign/README.md",
	"cmd/campaignd/README.md",
}

// mdLink matches [text](target) markdown links.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocsLinksResolve fails on any relative markdown link whose
// target file does not exist — the CI link check over README.md and
// docs/.
func TestDocsLinksResolve(t *testing.T) {
	for _, file := range docFiles {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("required documentation file missing: %v", err)
		}
		dir := filepath.Dir(file)
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
				t.Errorf("%s: broken link %q: %v", file, m[1], err)
			}
		}
	}
}

// documentedPackages are the directories held to the
// exported-comment standard (the packages docs/ARCHITECTURE.md leans
// on).
var documentedPackages = []string{
	"internal/a51",
	"internal/telecom",
	"internal/sniffer",
	"internal/campaign",
	"internal/population",
	"internal/countermeasure",
	"internal/obs",
	"internal/server",
	"internal/ratelimit",
	"internal/loadgen",
}

// TestDocsExportedComments fails on exported identifiers missing doc
// comments in the documented packages — the `go vet`-style exported
// comment gate (equivalent of revive's `exported` rule, without the
// dependency).
func TestDocsExportedComments(t *testing.T) {
	for _, dir := range documentedPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, f := range pkg.Files {
				checkFileExports(t, fset, f)
			}
		}
	}
}

func checkFileExports(t *testing.T, fset *token.FileSet, f *ast.File) {
	t.Helper()
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !exportedReceiver(d) {
				continue
			}
			if d.Doc == nil {
				t.Errorf("%s: exported %s %s has no doc comment",
					fset.Position(d.Pos()), kindOf(d), d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				names, sdoc, scomment := specNames(spec)
				exported := false
				for _, n := range names {
					if n.IsExported() {
						exported = true
						break
					}
				}
				if !exported {
					continue
				}
				// A doc comment on the grouped decl, the spec itself, or
				// a trailing line comment all count (grouped consts often
				// document the group once and each value inline).
				if d.Doc == nil && sdoc == nil && scomment == nil {
					t.Errorf("%s: exported %s %s has no doc comment",
						fset.Position(spec.Pos()), d.Tok, names[0].Name)
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver type is
// exported (functions have no receiver and count as exported scope).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func kindOf(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

func specNames(spec ast.Spec) ([]*ast.Ident, *ast.CommentGroup, *ast.CommentGroup) {
	switch s := spec.(type) {
	case *ast.TypeSpec:
		return []*ast.Ident{s.Name}, s.Doc, s.Comment
	case *ast.ValueSpec:
		return s.Names, s.Doc, s.Comment
	}
	return nil, nil, nil
}
