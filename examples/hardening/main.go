// Hardening applies the paper's §VII.A countermeasures one at a time
// and shows how each shrinks the attack surface, ending with the
// built-in authentication push flow (Fig 8) running against a live
// hardened service.
package main

import (
	"fmt"
	"log"

	"github.com/actfort/actfort/internal/countermeasure"
	"github.com/actfort/actfort/internal/dataset"
	"github.com/actfort/actfort/internal/ecosys"
	"github.com/actfort/actfort/internal/mask"
	"github.com/actfort/actfort/internal/strategy"
	"github.com/actfort/actfort/internal/tdg"
)

func directPct(cat *ecosys.Catalog) float64 {
	g, err := tdg.Build(tdg.NodesFromCatalog(cat, ecosys.PlatformWeb), ecosys.BaselineAttacker())
	if err != nil {
		log.Fatal(err)
	}
	st := strategy.PathLayers(g)
	return st.Pct(st.Direct)
}

func victims(cat *ecosys.Catalog) int {
	g, err := tdg.Build(tdg.NodesFromCatalog(cat), ecosys.BaselineAttacker())
	if err != nil {
		log.Fatal(err)
	}
	res, err := strategy.ForwardClosure(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	return res.VictimCount()
}

func main() {
	cat, err := dataset.Default()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline:              web direct %.2f%%, closure victims %d\n", directPct(cat), victims(cat))

	masked, err := countermeasure.ApplyUnifiedMasking(cat, mask.DefaultUnifiedStandard())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("+ unified masking:     web direct %.2f%%, closure victims %d\n", directPct(masked), victims(masked))

	mailHard, err := countermeasure.HardenEmailProviders(masked)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("+ hardened email:      web direct %.2f%%, closure victims %d\n", directPct(mailHard), victims(mailHard))

	full, err := countermeasure.AdoptBuiltinAuth(mailHard)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("+ built-in auth:       web direct %.2f%%, closure victims %d\n", directPct(full), victims(full))

	// The Fig 8 push flow, end to end.
	fmt.Println("\nbuilt-in authentication (Fig 8):")
	server := countermeasure.NewAuthServer()
	device, err := server.Register("+8613900004321")
	if err != nil {
		log.Fatal(err)
	}
	reqID, err := server.LoginRequest("alipay", "+8613900004321")
	if err != nil {
		log.Fatal(err)
	}
	prompts, err := device.Prompts()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  device prompt: approve login to %s?\n", prompts[0].Service)
	if err := device.Authorize(server, reqID); err != nil {
		log.Fatal(err)
	}
	signal, err := server.Signal(reqID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  verification signal issued: %s...\n", signal[:8])
	fmt.Printf("  service verifies: %v (replay: %v)\n",
		server.VerifySignal("alipay", "+8613900004321", signal),
		server.VerifySignal("alipay", "+8613900004321", signal))
	fmt.Println("  nothing crossed the GSM air interface.")
}
