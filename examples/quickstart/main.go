// Quickstart: load the calibrated ecosystem, measure it, and ask
// ActFort how an SMS-intercepting attacker reaches a hardened fintech
// account.
package main

import (
	"fmt"
	"log"

	"github.com/actfort/actfort"
)

func main() {
	// The calibrated 201-service Online Account Ecosystem.
	cat, err := actfort.DefaultCatalog()
	if err != nil {
		log.Fatal(err)
	}
	engine, err := actfort.New(cat, actfort.BaselineAttacker())
	if err != nil {
		log.Fatal(err)
	}

	// Ecosystem-wide measurement (the paper's §IV).
	m, err := engine.Measure()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("services: %d, auth paths: %d (web %d / mobile %d)\n",
		m.Services, m.Web.Paths+m.Mobile.Paths, m.Web.Paths, m.Mobile.Paths)
	fmt.Printf("web accounts resettable with phone+SMS alone: %.2f%%\n",
		m.WebLayers.Pct(m.WebLayers.Direct))

	// How would the attacker reach Alipay's mobile app, which demands
	// a citizen ID on top of the SMS code?
	plan, err := engine.AttackPlan(actfort.Account("alipay", actfort.Mobile), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nchain reaction attack:", plan)
	for i, step := range plan.Steps {
		fmt.Printf("  %d. take over %s via path %s\n", i+1, step.Account, step.PathID)
	}

	// And what falls if nothing is done? The forward closure.
	victims, err := engine.Victims(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nforward closure: %d accounts fall in %d rounds; %d survive\n",
		victims.VictimCount(), len(victims.Rounds), len(victims.Survivors))
}
