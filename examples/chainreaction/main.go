// Chainreaction runs the paper's Case II end to end against live HTTP
// services: ActFort plans the route (PayPal needs SMS + email code;
// Gmail falls to the phone number alone), the passive sniffer rips the
// codes off the simulated GSM air interface, and the executor walks
// the chain to a final payment.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"github.com/actfort/actfort/internal/attack"
)

func main() {
	scenario, err := attack.NewScenario(attack.ScenarioConfig{Seed: 2021, KeyBits: 12})
	if err != nil {
		log.Fatal(err)
	}
	defer scenario.Close()

	fmt.Println("victim:", scenario.Victim.Persona.RealName, scenario.Victim.Persona.Phone)
	fmt.Println("sniffer tuned to ARFCNs", scenario.Sniffer.Tuned())

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep, err := scenario.RunCase(ctx, 2)
	if err != nil {
		log.Fatalf("%v\npartial transcript: %v", err, rep)
	}

	fmt.Println("\n" + rep.Name)
	fmt.Println("planned route:", rep.Plan)
	for _, line := range rep.Lines {
		fmt.Println(" ", line)
	}

	// Passive sniffing is observable: the victim's phone buzzed too.
	fmt.Printf("\nvictim inbox now holds %d messages (passive interception is not covert)\n",
		len(scenario.VictimTerminal.Inbox()))
	st := scenario.Sniffer.Stats()
	fmt.Printf("sniffer: %d bursts seen, %d keys cracked\n", st.BurstsSeen, st.CracksSucceeded)
}
