// Mitm demonstrates the active attack of Fig 7/Fig 10: jam LTE, raise
// a fake base station, catch the victim's IMSI, relay the
// authentication to the captive SIM, reveal the MSISDN with a call,
// and from then on receive the victim's SMS codes exclusively — the
// victim's own phone stays silent.
package main

import (
	"fmt"
	"log"

	"github.com/actfort/actfort/internal/a51"
	"github.com/actfort/actfort/internal/mitm"
	"github.com/actfort/actfort/internal/telecom"
)

func main() {
	net := telecom.NewNetwork(telecom.Config{
		KeySpace: a51.KeySpace{Base: 0xC118000000000000, Bits: 12},
		Seed:     99,
	})
	cell, err := net.AddCell(telecom.Cell{
		ID: "lbs-downtown", ARFCNs: []int{512}, Cipher: telecom.CipherA51, LTE: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The victim: an LTE handset, normally unreachable by GSM sniffing.
	vicSub, err := net.Register("460007770001234", "+8613900004321")
	if err != nil {
		log.Fatal(err)
	}
	victim, err := net.NewTerminal(vicSub, telecom.RATLTE)
	if err != nil {
		log.Fatal(err)
	}
	if err := victim.Attach(cell); err != nil {
		log.Fatal(err)
	}

	// The attacker's own phone (receives the MSISDN-revealing call).
	attSub, err := net.Register("460009990000001", "+8613811110000")
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := net.NewTerminal(attSub, telecom.RATGSM)
	if err != nil {
		log.Fatal(err)
	}
	if err := attacker.Attach(cell); err != nil {
		log.Fatal(err)
	}

	atk, err := mitm.New(net, victim, cell, attacker, mitm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := atk.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Fig 10 protocol timeline:")
	for _, line := range res.Timeline() {
		fmt.Println("  ", line)
	}

	// A bank now texts the victim a code; only the attacker sees it.
	if _, err := net.SendSMS("Bank", res.VictimMSISDN, "Bank code 445566 for your transfer"); err != nil {
		log.Fatal(err)
	}
	got, _ := res.FVT.LastSMS()
	fmt.Printf("\nattacker's FVT received: %q\n", got.Text)
	fmt.Printf("victim's handset received %d messages (covert interception)\n", len(victim.Inbox()))

	if err := atk.TearDown(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("jammer off; victim back on", victim.RAT())
}
